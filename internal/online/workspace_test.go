package online

import (
	"testing"

	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
)

// TestOnlineWorkspaceMatchesFresh: every workspace-capable online scheduler
// must produce bit-identical schedules with and without a shared workspace,
// across interleaved instance sizes — the online counterpart of
// offline.TestWorkspacePlannerMatchesFresh.
func TestOnlineWorkspaceMatchesFresh(t *testing.T) {
	eng := sim.NewEngine()
	ws := offline.NewWorkspace()
	for i, nj := range []int{8, 3, 11} {
		inst := randomInstance(t, 500+int64(i), 2, 2, nj)

		planners := []struct {
			name  string
			fresh *Heuristic
			pool  *Heuristic
		}{
			{"Online", New(Plain), New(Plain)},
			{"Online-EDF", New(EDF), New(EDF)},
			{"Online-NonOpt", NewNonOptimized(), NewNonOptimized()},
		}
		for _, p := range planners {
			want, err := sim.RunPlanned(inst, p.fresh)
			if err != nil {
				t.Fatalf("%s fresh: %v", p.name, err)
			}
			p.pool.SetWorkspace(ws)
			got, err := eng.RunPlanned(inst, p.pool)
			if err != nil {
				t.Fatalf("%s pooled: %v", p.name, err)
			}
			for j := range want.Completion {
				if want.Completion[j] != got.Completion[j] {
					t.Fatalf("%s jobs=%d: job %d completes at %v pooled, %v fresh",
						p.name, nj, j, got.Completion[j], want.Completion[j])
				}
			}
		}

		for _, mk := range []func() sim.Policy{
			func() sim.Policy { return NewBender98() },
			func() sim.Policy { return NewEGDF() },
		} {
			fresh, pool := mk(), mk()
			want, err := sim.RunList(inst, fresh)
			if err != nil {
				t.Fatalf("%s fresh: %v", fresh.Name(), err)
			}
			pool.(interface{ SetWorkspace(*offline.Workspace) }).SetWorkspace(ws)
			got, err := eng.RunList(inst, pool)
			if err != nil {
				t.Fatalf("%s pooled: %v", pool.Name(), err)
			}
			for j := range want.Completion {
				if want.Completion[j] != got.Completion[j] {
					t.Fatalf("%s jobs=%d: job %d completes at %v pooled, %v fresh",
						pool.Name(), nj, j, got.Completion[j], want.Completion[j])
				}
			}
		}
	}
}

// TestOnlineWorkspaceReducesAllocs quantifies the satellite claim: a shared
// workspace must cut the online heuristic's steady-state allocations by at
// least 10× versus the workspace-less path (the exact figure is tracked by
// BenchmarkPlannedEngine; this guards the order of magnitude).
func TestOnlineWorkspaceReducesAllocs(t *testing.T) {
	inst := randomInstance(t, 91, 2, 2, 12)
	eng := sim.NewEngine()

	fresh := New(Plain)
	if _, err := eng.RunPlanned(inst, fresh); err != nil {
		t.Fatal(err)
	}
	noWS := testing.AllocsPerRun(10, func() {
		if _, err := eng.RunPlanned(inst, fresh); err != nil {
			t.Fatal(err)
		}
	})

	pooled := New(Plain)
	pooled.SetWorkspace(offline.NewWorkspace())
	if _, err := eng.RunPlanned(inst, pooled); err != nil {
		t.Fatal(err)
	}
	withWS := testing.AllocsPerRun(10, func() {
		if _, err := eng.RunPlanned(inst, pooled); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("online steady-state allocs/op: %.0f without workspace, %.0f with", noWS, withWS)
	if withWS*10 > noWS {
		t.Fatalf("workspace reduces allocs only %.0f → %.0f (want ≥10×)", noWS, withWS)
	}
}
