package online

import (
	"errors"
	"testing"

	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
)

// TestEGDFSurfacesSolveFailures is the EGDF counterpart of
// offline.TestPlannerSurfacesRefineError: a forced step-2 failure must be
// counted and retrievable — not silently absorbed by the keep-previous-
// order fallback — while the run still completes every job.
func TestEGDFSurfacesSolveFailures(t *testing.T) {
	inst := randomInstance(t, 611, 2, 2, 8)
	boom := errors.New("forced optimal-stretch failure")

	e := NewEGDF()
	e.solve = func(*offline.Solver, *offline.Problem) (*offline.Solution, error) {
		return nil, boom
	}
	sched, err := sim.RunList(inst, e)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range sched.Completion {
		if c <= 0 {
			t.Fatalf("job %d never completed despite the fallback order", j)
		}
	}
	se, re := e.SolveFailures()
	if se == 0 {
		t.Fatal("forced step-2 failures were not counted")
	}
	if re != 0 {
		t.Fatalf("refineErrs = %d without a refine failure", re)
	}
	if !errors.Is(e.LastStretchErr(), boom) {
		t.Fatalf("LastStretchErr = %v, want the forced failure", e.LastStretchErr())
	}

	// Counters are per-run: Init must clear them.
	e.Init(inst)
	if se, re := e.SolveFailures(); se != 0 || re != 0 || e.LastStretchErr() != nil {
		t.Fatalf("Init left counters (%d, %d, %v)", se, re, e.LastStretchErr())
	}
}

// TestEGDFSurfacesRefineFailures: a forced step-3 failure falls back to
// ranking the unrefined allocation — recorded, with the run completing and
// the schedule matching what a never-refining EGDF computes.
func TestEGDFSurfacesRefineFailures(t *testing.T) {
	inst := randomInstance(t, 613, 2, 2, 8)
	boom := errors.New("forced refine failure")

	e := NewEGDF()
	e.refine = func(*offline.Problem, float64) (*offline.Alloc, error) {
		return nil, boom
	}
	sched, err := sim.RunList(inst, e)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range sched.Completion {
		if c <= 0 {
			t.Fatalf("job %d never completed", j)
		}
	}
	se, re := e.SolveFailures()
	if re == 0 {
		t.Fatal("forced refine failures were not counted")
	}
	if se != 0 {
		t.Fatalf("stretchErrs = %d without a stretch failure", se)
	}
	if !errors.Is(e.LastRefineErr(), boom) {
		t.Fatalf("LastRefineErr = %v, want the forced failure", e.LastRefineErr())
	}
}

// TestEGDFRankingSteadyStateAllocs gates the pooled ranking path: with a
// workspace attached, replaying Online-EGDF through one engine must not
// allocate at all in steady state — the rank map, the GlobalOrder output
// and its sort scratch are all reused across arrival events and runs
// (ROADMAP PR 2 follow-up; companion of TestOnlineWorkspaceReducesAllocs).
func TestEGDFRankingSteadyStateAllocs(t *testing.T) {
	inst := randomInstance(t, 97, 2, 2, 10)
	eng := sim.NewEngine()
	e := NewEGDF()
	e.SetWorkspace(offline.NewWorkspace())
	if _, err := eng.RunList(inst, e); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.RunList(inst, e); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state EGDF run allocates %.1f objects/op, want 0", allocs)
	}
}
