package online

import (
	"testing"

	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
)

// TestEGDFIncrementalMatchesCold runs Online-EGDF in Exact mode with the
// warm-started incremental session and with the DisableIncremental
// ablation over the same instance: the schedules must be identical event
// for event (warm solves are bit-identical in status/objective to cold
// ones), the incremental run must actually warm-start, and no fallback may
// fire on a plain stream.
func TestEGDFIncrementalMatchesCold(t *testing.T) {
	inst := randomInstance(t, 41, 2, 2, 9)

	run := func(disable bool) (*model.Schedule, *EGDF) {
		e := NewEGDF()
		e.Solver.Exact = true
		e.DisableIncremental = disable
		ws := offline.NewWorkspace()
		e.SetWorkspace(ws)
		sched, err := sim.NewEngine().RunList(inst, e)
		if err != nil {
			t.Fatal(err)
		}
		return sched, e
	}

	warmSched, warm := run(false)
	coldSched, _ := run(true)

	for j := range warmSched.Completion {
		if warmSched.Completion[j] != coldSched.Completion[j] {
			t.Fatalf("job %d: warm completion %v, cold %v",
				j, warmSched.Completion[j], coldSched.Completion[j])
		}
	}
	if se, _ := warm.SolveFailures(); se != 0 {
		t.Fatalf("%d step-2 failures on the incremental path", se)
	}
	st := warm.ws.SessionStats()
	if st == nil || st.Warm == 0 {
		t.Fatalf("incremental run never warm-started: %+v", st)
	}
	if st.Fallback != 0 {
		t.Fatalf("unexplained fallbacks on a plain stream: %+v", *st)
	}
}

// TestEGDFIncrementalForcedFallback proves the counted fallback is
// reachable end to end: forcing one warm failure mid-run must leave the
// schedule untouched and Fallback == 1.
func TestEGDFIncrementalForcedFallback(t *testing.T) {
	inst := randomInstance(t, 41, 2, 2, 9)

	e := NewEGDF()
	e.Solver.Exact = true
	ws := offline.NewWorkspace()
	e.SetWorkspace(ws)
	ws.Session().Incremental().ForceWarmFailure(1)
	sched, err := sim.NewEngine().RunList(inst, e)
	if err != nil {
		t.Fatal(err)
	}

	ref := NewEGDF()
	ref.Solver.Exact = true
	ref.SetWorkspace(offline.NewWorkspace())
	want, err := sim.NewEngine().RunList(inst, ref)
	if err != nil {
		t.Fatal(err)
	}
	for j := range sched.Completion {
		if sched.Completion[j] != want.Completion[j] {
			t.Fatalf("job %d: completion %v with forced fallback, want %v",
				j, sched.Completion[j], want.Completion[j])
		}
	}
	if st := ws.SessionStats(); st.Fallback != 1 {
		t.Fatalf("forced warm failure not counted: %+v", *st)
	}
}
