// Package fault is the deterministic failure model behind the cluster
// world's fault injection and stretchd's chaos tooling: a seeded Plan of
// per-machine down/up intervals (an alternating renewal process — every
// draw comes from an explicitly seeded generator, so a plan is a pure
// function of its Config and replays bitwise), a capped exponential
// Backoff for re-placement delays in virtual time, and CrashIndices, the
// shared seeded kill-point schedule of the chaos loadgen and the
// crash-recovery differential tests.
//
// Failures are confined to [0, Horizon): beyond the horizon no machine
// ever fails, which is what guarantees every retried job eventually runs
// to completion and the fault event loop terminates.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// Config parameterises one plan. Rate is the expected number of failures
// per machine over the horizon; MeanDown is the mean repair duration.
type Config struct {
	Nodes    int
	Horizon  float64
	Rate     float64
	MeanDown float64
	Seed     int64
}

// Interval is one outage: the machine goes down at Down and is back at Up
// (half-open [Down, Up): the machine is up again at exactly Up).
type Interval struct {
	Down, Up float64
}

// Plan is a fixed failure schedule: per machine, a sorted list of
// non-overlapping down intervals. Plans are immutable and safe to share
// across runs — reusing one never perturbs it.
type Plan struct {
	intervals [][]Interval
}

// nodeSeedStride decorrelates per-node generators derived from one seed.
const nodeSeedStride = 1_000_003

// New generates the plan for cfg: each machine draws exponential gaps
// between failures (mean Horizon/Rate) and exponential repair durations
// (mean MeanDown) from its own seeded generator, intervals clipped to
// start inside [0, Horizon).
func New(cfg Config) (*Plan, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("fault: plan needs at least one node, got %d", cfg.Nodes)
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("fault: negative failure rate %v", cfg.Rate)
	}
	if cfg.Rate > 0 && cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fault: rate %v needs a positive horizon, got %v", cfg.Rate, cfg.Horizon)
	}
	if cfg.MeanDown < 0 {
		return nil, fmt.Errorf("fault: negative mean down time %v", cfg.MeanDown)
	}
	p := &Plan{intervals: make([][]Interval, cfg.Nodes)}
	if cfg.Rate == 0 {
		return p, nil
	}
	meanGap := cfg.Horizon / cfg.Rate
	meanDown := cfg.MeanDown
	if meanDown == 0 {
		meanDown = cfg.Horizon / 20
	}
	for ni := range p.intervals {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ni)*nodeSeedStride))
		t := rng.ExpFloat64() * meanGap
		for t < cfg.Horizon {
			down := rng.ExpFloat64() * meanDown
			p.intervals[ni] = append(p.intervals[ni], Interval{Down: t, Up: t + down})
			t = t + down + rng.ExpFloat64()*meanGap
		}
	}
	return p, nil
}

// NumNodes returns the number of machines the plan covers.
func (p *Plan) NumNodes() int { return len(p.intervals) }

// HasFailures reports whether any machine ever fails under the plan. A
// plan without failures is by definition inert: consumers take their
// fault-free fast path and results are bitwise identical to no plan.
func (p *Plan) HasFailures() bool {
	for _, ivs := range p.intervals {
		if len(ivs) > 0 {
			return true
		}
	}
	return false
}

// Intervals returns machine ni's outages, sorted and non-overlapping. The
// returned slice is the plan's own storage — callers must not mutate it.
func (p *Plan) Intervals(ni int) []Interval { return p.intervals[ni] }

// Down reports whether machine ni is down at t.
func (p *Plan) Down(ni int, t float64) bool {
	ivs := p.intervals[ni]
	i := sort.Search(len(ivs), func(k int) bool { return ivs[k].Up > t })
	return i < len(ivs) && ivs[i].Down <= t
}

// UpAt returns the earliest instant >= t at which machine ni is up.
func (p *Plan) UpAt(ni int, t float64) float64 {
	ivs := p.intervals[ni]
	i := sort.Search(len(ivs), func(k int) bool { return ivs[k].Up > t })
	if i < len(ivs) && ivs[i].Down <= t {
		return ivs[i].Up
	}
	return t
}

// NextDown returns machine ni's first failure instant strictly after t,
// or ok=false when it never fails again.
func (p *Plan) NextDown(ni int, t float64) (float64, bool) {
	ivs := p.intervals[ni]
	i := sort.Search(len(ivs), func(k int) bool { return ivs[k].Down > t })
	if i == len(ivs) {
		return 0, false
	}
	return ivs[i].Down, true
}

// Backoff is the capped exponential re-placement delay: a job failed on
// its k-th attempt re-enters the balancer after min(Base·2^(k-1), Cap)
// units of virtual time.
type Backoff struct {
	Base, Cap float64
}

// DefaultBackoff returns the cluster world's standard retry curve.
func DefaultBackoff() Backoff { return Backoff{Base: 1, Cap: 64} }

// Delay returns the backoff before re-placing a job that has already been
// placed attempt times (attempt >= 1).
func (b Backoff) Delay(attempt int) float64 {
	base := b.Base
	if base <= 0 {
		base = 1
	}
	d := base
	for k := 1; k < attempt; k++ {
		d *= 2
		if b.Cap > 0 && d >= b.Cap {
			return b.Cap
		}
	}
	if b.Cap > 0 && d > b.Cap {
		return b.Cap
	}
	return d
}

// CrashIndices returns n distinct seeded crash points drawn from
// [1, total), sorted ascending — the event indices at which the chaos
// loadgen kills the daemon and the differential tests cut the stream.
// Index 0 is excluded so a crash always has at least one event behind it.
func CrashIndices(seed int64, n, total int) []int {
	if total <= 1 || n <= 0 {
		return nil
	}
	if n > total-1 {
		n = total - 1
	}
	rng := rand.New(rand.NewSource(seed))
	picked := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		i := 1 + rng.Intn(total-1)
		if !picked[i] {
			picked[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
