package fault_test

import (
	"testing"

	"stretchsched/internal/fault"
)

// TestPlanDeterministic: two plans from the same config are identical
// interval for interval; a different seed moves at least one interval.
func TestPlanDeterministic(t *testing.T) {
	cfg := fault.Config{Nodes: 4, Horizon: 100, Rate: 2, MeanDown: 3, Seed: 9}
	a, err := fault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.HasFailures() {
		t.Fatal("rate 2 over 4 nodes generated no failures")
	}
	for ni := 0; ni < cfg.Nodes; ni++ {
		ia, ib := a.Intervals(ni), b.Intervals(ni)
		if len(ia) != len(ib) {
			t.Fatalf("node %d: %d vs %d intervals", ni, len(ia), len(ib))
		}
		for k := range ia {
			if ia[k] != ib[k] {
				t.Fatalf("node %d interval %d: %+v vs %+v", ni, k, ia[k], ib[k])
			}
		}
	}
	cfg2 := cfg
	cfg2.Seed = 10
	c, err := fault.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for ni := 0; ni < cfg.Nodes && same; ni++ {
		ia, ic := a.Intervals(ni), c.Intervals(ni)
		if len(ia) != len(ic) {
			same = false
			break
		}
		for k := range ia {
			if ia[k] != ic[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 9 and 10 produced identical plans")
	}
}

// TestPlanInvariants: intervals are sorted, non-overlapping, start inside
// the horizon, and the point queries agree with the interval list.
func TestPlanInvariants(t *testing.T) {
	cfg := fault.Config{Nodes: 3, Horizon: 50, Rate: 4, MeanDown: 2, Seed: 123}
	p, err := fault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ni := 0; ni < cfg.Nodes; ni++ {
		prevUp := 0.0
		for k, iv := range p.Intervals(ni) {
			if iv.Down >= iv.Up {
				t.Fatalf("node %d interval %d degenerate: %+v", ni, k, iv)
			}
			if iv.Down < prevUp {
				t.Fatalf("node %d interval %d overlaps previous: %+v (prev up %v)", ni, k, iv, prevUp)
			}
			if iv.Down >= cfg.Horizon {
				t.Fatalf("node %d interval %d starts past the horizon: %+v", ni, k, iv)
			}
			mid := (iv.Down + iv.Up) / 2
			if !p.Down(ni, mid) {
				t.Fatalf("node %d: Down(%v) = false inside %+v", ni, mid, iv)
			}
			if got := p.UpAt(ni, mid); got != iv.Up {
				t.Fatalf("node %d: UpAt(%v) = %v, want %v", ni, mid, got, iv.Up)
			}
			if p.Down(ni, iv.Up) {
				t.Fatalf("node %d: down at its own up instant %v", ni, iv.Up)
			}
			prevUp = iv.Up
		}
		if p.Down(ni, cfg.Horizon*10) {
			t.Fatalf("node %d down far past the horizon", ni)
		}
		if next, ok := p.NextDown(ni, cfg.Horizon); ok {
			t.Fatalf("node %d fails at %v past the horizon", ni, next)
		}
	}
}

// TestZeroRateInert: a zero-rate plan has no failures at all.
func TestZeroRateInert(t *testing.T) {
	p, err := fault.New(fault.Config{Nodes: 5, Horizon: 100, Rate: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.HasFailures() {
		t.Fatal("zero-rate plan has failures")
	}
	for ni := 0; ni < 5; ni++ {
		if len(p.Intervals(ni)) != 0 {
			t.Fatalf("node %d has %d intervals", ni, len(p.Intervals(ni)))
		}
	}
}

// TestNewRejectsBadConfig covers the typed validation errors.
func TestNewRejectsBadConfig(t *testing.T) {
	for _, cfg := range []fault.Config{
		{Nodes: 0, Horizon: 1, Rate: 1},
		{Nodes: 2, Horizon: 0, Rate: 1},
		{Nodes: 2, Horizon: 1, Rate: -1},
		{Nodes: 2, Horizon: 1, Rate: 1, MeanDown: -1},
	} {
		if _, err := fault.New(cfg); err == nil {
			t.Fatalf("New(%+v) accepted a bad config", cfg)
		}
	}
}

// TestBackoffCurve pins the capped-exponential delays.
func TestBackoffCurve(t *testing.T) {
	b := fault.Backoff{Base: 2, Cap: 10}
	want := []float64{2, 4, 8, 10, 10}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Zero-valued backoff defaults to base 1, uncapped growth.
	z := fault.Backoff{}
	if z.Delay(1) != 1 || z.Delay(4) != 8 {
		t.Fatalf("zero backoff: Delay(1)=%v Delay(4)=%v", z.Delay(1), z.Delay(4))
	}
}

// TestCrashIndices: seeded, sorted, distinct, in range, and stable.
func TestCrashIndices(t *testing.T) {
	a := fault.CrashIndices(7, 3, 100)
	b := fault.CrashIndices(7, 3, 100)
	if len(a) != 3 {
		t.Fatalf("got %d indices, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reseeded indices diverge: %v vs %v", a, b)
		}
		if a[i] < 1 || a[i] >= 100 {
			t.Fatalf("index %d out of [1,100)", a[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("indices not strictly ascending: %v", a)
		}
	}
	if got := fault.CrashIndices(7, 10, 4); len(got) != 3 {
		t.Fatalf("capped indices = %v, want 3 of them", got)
	}
	if got := fault.CrashIndices(7, 2, 1); got != nil {
		t.Fatalf("total=1 should yield no crash points, got %v", got)
	}
}
