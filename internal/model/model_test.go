package model

import (
	"math"
	"testing"
)

func twoSitePlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform([]Machine{
		{Name: "lyon", Speed: 2, Databanks: []DatabankID{0, 1}},
		{Name: "nancy", Speed: 3, Databanks: []DatabankID{1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformIndexes(t *testing.T) {
	p := twoSitePlatform(t)
	if p.NumMachines() != 2 || p.NumDatabanks() != 2 {
		t.Fatal("counts")
	}
	if got := p.Eligible(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("eligible(0) = %v", got)
	}
	if got := p.Eligible(1); len(got) != 2 {
		t.Fatalf("eligible(1) = %v", got)
	}
	if p.AggregateSpeed(0) != 2 || p.AggregateSpeed(1) != 5 {
		t.Fatal("aggregate speeds")
	}
	if p.TotalSpeed() != 5 {
		t.Fatal("total speed")
	}
	if p.IsUniform() {
		t.Fatal("restricted platform reported uniform")
	}
	if !p.Machine(0).Hosts(0) || p.Machine(1).Hosts(0) {
		t.Fatal("Hosts")
	}
}

func TestPlatformValidation(t *testing.T) {
	cases := []struct {
		name string
		ms   []Machine
		nb   int
	}{
		{"no machines", nil, 1},
		{"no banks", []Machine{{Speed: 1}}, 0},
		{"bad speed", []Machine{{Speed: -1, Databanks: []DatabankID{0}}}, 1},
		{"zero speed", []Machine{{Speed: 0, Databanks: []DatabankID{0}}}, 1},
		{"nan speed", []Machine{{Speed: math.NaN(), Databanks: []DatabankID{0}}}, 1},
		{"unknown bank", []Machine{{Speed: 1, Databanks: []DatabankID{7}}}, 1},
		{"dup bank", []Machine{{Speed: 1, Databanks: []DatabankID{0, 0}}}, 1},
		{"orphan bank", []Machine{{Speed: 1, Databanks: []DatabankID{0}}}, 2},
	}
	for _, c := range cases {
		if _, err := NewPlatform(c.ms, c.nb); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestUniformHelper(t *testing.T) {
	p, err := Uniform([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsUniform() {
		t.Fatal("Uniform not uniform")
	}
	if p.AggregateSpeed(0) != 6 {
		t.Fatal("aggregate")
	}
}

func TestInstanceSortsByRelease(t *testing.T) {
	p := twoSitePlatform(t)
	inst, err := NewInstance(p, []Job{
		{Release: 5, Size: 1, Databank: 0},
		{Release: 2, Size: 4, Databank: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Jobs[0].Release != 2 || inst.Jobs[1].Release != 5 {
		t.Fatal("not sorted by release")
	}
	if inst.Jobs[0].ID != 0 || inst.Jobs[1].ID != 1 {
		t.Fatal("not renumbered")
	}
	if inst.Jobs[0].Name == "" {
		t.Fatal("no default name")
	}
}

func TestInstanceValidation(t *testing.T) {
	p := twoSitePlatform(t)
	bad := []Job{
		{Release: 0, Size: 0, Databank: 0},
		{Release: -1, Size: 1, Databank: 0},
		{Release: 0, Size: 1, Databank: 5},
		{Release: 0, Size: math.Inf(1), Databank: 0},
	}
	for i, j := range bad {
		if _, err := NewInstance(p, []Job{j}); err == nil {
			t.Errorf("job %d: expected error", i)
		}
	}
}

func TestAloneTimeAndWeight(t *testing.T) {
	p := twoSitePlatform(t)
	inst, err := NewInstance(p, []Job{
		{Release: 0, Size: 10, Databank: 0}, // only machine 0 (speed 2): alone = 5
		{Release: 0, Size: 10, Databank: 1}, // both (speed 5): alone = 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.AloneTime(0); got != 5 {
		t.Fatalf("alone(0) = %v", got)
	}
	if got := inst.AloneTime(1); got != 2 {
		t.Fatalf("alone(1) = %v", got)
	}
	if got := inst.Weight(1); got != 0.5 {
		t.Fatalf("weight(1) = %v", got)
	}
	if got := inst.Delta(); got != 2.5 {
		t.Fatalf("delta = %v", got)
	}
	if inst.TotalWork() != 20 || inst.MaxRelease() != 0 {
		t.Fatal("totals")
	}
}

func TestMetrics(t *testing.T) {
	p, _ := Uniform([]float64{1})
	inst, err := NewInstance(p, []Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 1, Size: 1, Databank: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewResult(inst)
	r.Completion[0] = 2 // flow 2, stretch 1
	r.Completion[1] = 3 // flow 2, stretch 2
	if got := r.Flow(inst, 1); got != 2 {
		t.Fatalf("flow = %v", got)
	}
	if got := r.Stretch(inst, 1); got != 2 {
		t.Fatalf("stretch = %v", got)
	}
	if r.MaxStretch(inst) != 2 || r.SumStretch(inst) != 3 {
		t.Fatal("stretch aggregates")
	}
	if r.MaxFlow(inst) != 2 || r.SumFlow(inst) != 4 || r.Makespan(inst) != 3 {
		t.Fatal("flow aggregates")
	}
	if err := r.Check(inst); err != nil {
		t.Fatal(err)
	}
}

func TestResultCheckFailures(t *testing.T) {
	p, _ := Uniform([]float64{1})
	inst, _ := NewInstance(p, []Job{{Release: 0, Size: 2, Databank: 0}})
	r := NewResult(inst)
	if err := r.Check(inst); err == nil {
		t.Fatal("unset completion not caught")
	}
	r.Completion[0] = 1 // before release+alone = 2
	if err := r.Check(inst); err == nil {
		t.Fatal("too-early completion not caught")
	}
}

func TestScheduleValidate(t *testing.T) {
	p := twoSitePlatform(t)
	inst, err := NewInstance(p, []Job{{Release: 0, Size: 10, Databank: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(inst)
	// Split across both machines: 2·t + 3·t = 10 → t = 2.
	s.AddSlice(Slice{Machine: 0, Job: 0, Start: 0, End: 2})
	s.AddSlice(Slice{Machine: 1, Job: 0, Start: 0, End: 2})
	s.Completion[0] = 2
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidateCatches(t *testing.T) {
	p := twoSitePlatform(t)
	inst, err := NewInstance(p, []Job{
		{Release: 1, Size: 4, Databank: 0},
		{Release: 0, Size: 6, Databank: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// After release-sorting, job 0 is (release 0, size 6, db1) and job 1 is
	// (release 1, size 4, db0).
	mk := func() *Schedule {
		s := NewSchedule(inst)
		s.AddSlice(Slice{Machine: 0, Job: 1, Start: 1, End: 3}) // 4 units on speed 2
		s.AddSlice(Slice{Machine: 1, Job: 0, Start: 0, End: 2}) // 6 units on speed 3
		s.Completion[1] = 3
		s.Completion[0] = 2
		return s
	}
	if err := mk().Validate(inst, 0); err != nil {
		t.Fatalf("baseline should validate: %v", err)
	}

	s := mk()
	s.Slices[0].Machine = 1 // machine 1 lacks databank 0 and overlaps job 1
	if err := s.Validate(inst, 0); err == nil {
		t.Fatal("ineligible machine not caught")
	}

	s = mk()
	s.Slices[0].Start = 0 // before release
	if err := s.Validate(inst, 0); err == nil {
		t.Fatal("pre-release start not caught")
	}

	s = mk()
	s.Slices[0].End = 2.5 // under-processed
	if err := s.Validate(inst, 0); err == nil {
		t.Fatal("work deficit not caught")
	}

	s = mk()
	s.Slices = append(s.Slices, Slice{Machine: 0, Job: 1, Start: 2, End: 2.5}) // overlap on machine 0
	if err := s.Validate(inst, 0); err == nil {
		t.Fatal("overlap not caught")
	}

	s = mk()
	s.Completion[0] = 4 // completion after last slice
	if err := s.Validate(inst, 0); err == nil {
		t.Fatal("completion mismatch not caught")
	}
}

func TestAddSliceMergesContiguousRuns(t *testing.T) {
	p, _ := Uniform([]float64{1})
	inst, _ := NewInstance(p, []Job{{Release: 0, Size: 2, Databank: 0}})
	s := NewSchedule(inst)
	s.AddSlice(Slice{Machine: 0, Job: 0, Start: 0, End: 1})
	s.AddSlice(Slice{Machine: 0, Job: 0, Start: 1, End: 2})
	if len(s.Slices) != 1 || s.Slices[0].End != 2 {
		t.Fatalf("merge failed: %+v", s.Slices)
	}
	s.AddSlice(Slice{Machine: 0, Job: 0, Start: 3, End: 3}) // empty: ignored
	if len(s.Slices) != 1 {
		t.Fatal("empty slice not ignored")
	}
}

func TestDeltaEmptyInstance(t *testing.T) {
	p, _ := Uniform([]float64{1})
	inst, err := NewInstance(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Delta() != 1 {
		t.Fatal("empty delta should be 1")
	}
}
