package model

import "testing"

func streamPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform([]Machine{
		{Name: "A", Speed: 2, Databanks: []DatabankID{0, 1}},
		{Name: "B", Speed: 3, Databanks: []DatabankID{1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStreamAddRemoveRecycle(t *testing.T) {
	s := NewStream(streamPlatform(t))
	a, err := s.Add(Job{Release: 0, Size: 4, Databank: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Add(Job{Release: 1, Size: 10, Databank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 1 {
		t.Fatalf("slot ids = %d,%d, want 0,1", a, b)
	}
	inst := s.Instance()
	if got := inst.AloneTime(a); got != 2 { // 4 / speed(bank0)=2
		t.Errorf("alone(a) = %v, want 2", got)
	}
	if got := inst.AloneTime(b); got != 2 { // 10 / speed(bank1)=5
		t.Errorf("alone(b) = %v, want 2", got)
	}

	if err := s.Remove(a); err != nil {
		t.Fatal(err)
	}
	if s.Live(a) || !s.Live(b) {
		t.Fatalf("liveness after remove: a=%v b=%v", s.Live(a), s.Live(b))
	}
	if s.NumLive() != 1 || s.Slots() != 2 {
		t.Fatalf("NumLive=%d Slots=%d, want 1,2", s.NumLive(), s.Slots())
	}
	// Tombstoned slot keeps its data until reuse.
	if inst.Jobs[a].Size != 4 {
		t.Errorf("tombstone size = %v, want 4", inst.Jobs[a].Size)
	}
	// LIFO recycling: the freed slot is reused first.
	c, err := s.Add(Job{Release: 2, Size: 6, Databank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("recycled slot = %d, want %d", c, a)
	}
	if inst.Jobs[c].Size != 6 || inst.Jobs[c].ID != c {
		t.Errorf("recycled slot holds %+v", inst.Jobs[c])
	}
	if got := inst.AloneTime(c); got != 6.0/5 {
		t.Errorf("alone(c) = %v, want %v", got, 6.0/5)
	}

	if err := s.Remove(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(c); err == nil {
		t.Error("double Remove succeeded")
	}
	if _, err := s.Add(Job{Size: -1, Databank: 0}); err == nil {
		t.Error("Add accepted negative size")
	}
	if _, err := s.Add(Job{Size: 1, Databank: 7}); err == nil {
		t.Error("Add accepted unknown databank")
	}
}

func TestStreamSnapshotRestore(t *testing.T) {
	p := streamPlatform(t)
	s := NewStream(p)
	var ids []JobID
	for i := 0; i < 5; i++ {
		id, err := s.Add(Job{Release: float64(i), Size: float64(i + 1), Databank: DatabankID(i % 2)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Remove(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(ids[3]); err != nil {
		t.Fatal(err)
	}

	slots, live, free := s.Snapshot(nil, nil, nil)
	r := NewStream(p)
	if err := r.Restore(slots, live, free); err != nil {
		t.Fatal(err)
	}
	if r.NumLive() != s.NumLive() || r.Slots() != s.Slots() {
		t.Fatalf("restored NumLive=%d Slots=%d, want %d,%d",
			r.NumLive(), r.Slots(), s.NumLive(), s.Slots())
	}
	// The restored stream must recycle the same slots in the same order.
	for i := 0; i < 3; i++ {
		want, err := s.Add(Job{Release: 9, Size: 2, Databank: 0})
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Add(Job{Release: 9, Size: 2, Databank: 0})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("add %d after restore: slot %d, want %d", i, got, want)
		}
	}

	if err := r.Restore(slots, live[:1], free); err == nil {
		t.Error("Restore accepted mismatched liveness length")
	}
	if err := r.Restore(slots, live, append([]JobID{0}, free...)); err == nil {
		t.Error("Restore accepted free-list naming a live slot")
	}
}
