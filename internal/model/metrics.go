package model

import (
	"fmt"
	"math"
)

// Result holds per-job completion times produced by a scheduler.
type Result struct {
	Completion []float64
}

// NewResult returns a Result sized for inst with completions unset (NaN).
func NewResult(inst *Instance) *Result {
	c := make([]float64, inst.NumJobs())
	for i := range c {
		c[i] = math.NaN()
	}
	return &Result{Completion: c}
}

// Flow returns F_j = C_j − r_j.
func (r *Result) Flow(inst *Instance, j JobID) float64 {
	return r.Completion[j] - inst.Jobs[j].Release
}

// Stretch returns S_j = F_j / p*_j, the slowdown of job j relative to its
// execution alone on its eligible machines.
func (r *Result) Stretch(inst *Instance, j JobID) float64 {
	return r.Flow(inst, j) / inst.AloneTime(j)
}

// MaxStretch returns max_j S_j.
func (r *Result) MaxStretch(inst *Instance) float64 {
	v := 0.0
	for j := range inst.Jobs {
		v = math.Max(v, r.Stretch(inst, JobID(j)))
	}
	return v
}

// SumStretch returns Σ_j S_j.
func (r *Result) SumStretch(inst *Instance) float64 {
	v := 0.0
	for j := range inst.Jobs {
		v += r.Stretch(inst, JobID(j))
	}
	return v
}

// MaxFlow returns max_j F_j.
func (r *Result) MaxFlow(inst *Instance) float64 {
	v := 0.0
	for j := range inst.Jobs {
		v = math.Max(v, r.Flow(inst, JobID(j)))
	}
	return v
}

// SumFlow returns Σ_j F_j.
func (r *Result) SumFlow(inst *Instance) float64 {
	v := 0.0
	for j := range inst.Jobs {
		v += r.Flow(inst, JobID(j))
	}
	return v
}

// Makespan returns max_j C_j.
func (r *Result) Makespan(inst *Instance) float64 {
	v := 0.0
	for j := range r.Completion {
		v = math.Max(v, r.Completion[j])
	}
	return v
}

// Check verifies that every completion is set and no job completes before
// its release plus its alone time (a universal lower bound).
func (r *Result) Check(inst *Instance) error {
	if len(r.Completion) != inst.NumJobs() {
		return fmt.Errorf("model: result has %d completions for %d jobs",
			len(r.Completion), inst.NumJobs())
	}
	const tol = 1e-6
	for j := range inst.Jobs {
		c := r.Completion[j]
		if math.IsNaN(c) {
			return fmt.Errorf("model: job %d has no completion", j)
		}
		if earliest := inst.Jobs[j].Release + inst.AloneTime(JobID(j)); c < earliest-tol*(1+earliest) {
			return fmt.Errorf("model: job %d completes at %v before physical bound %v", j, c, earliest)
		}
	}
	return nil
}

// Slice is a maximal period during which one machine continuously processes
// one job. Schedules are unions of slices.
type Slice struct {
	Machine MachineID
	Job     JobID
	Start   float64
	End     float64
}

// Duration returns End − Start.
func (s Slice) Duration() float64 { return s.End - s.Start }

// Schedule is a full execution trace: per-job completions plus the slices
// that realise them. Slices allow exact validation of the divisible-load
// execution rules.
type Schedule struct {
	Result
	Slices []Slice
}

// NewSchedule returns an empty schedule for inst.
func NewSchedule(inst *Instance) *Schedule {
	return &Schedule{Result: *NewResult(inst)}
}

// Reset re-initialises the schedule for inst, reusing the completion and
// slice storage. Simulation engines that replay many instances call this
// instead of NewSchedule so steady-state runs allocate nothing.
func (s *Schedule) Reset(inst *Instance) {
	n := inst.NumJobs()
	if cap(s.Completion) < n {
		s.Completion = make([]float64, n)
	}
	s.Completion = s.Completion[:n]
	for i := range s.Completion {
		s.Completion[i] = math.NaN()
	}
	s.Slices = s.Slices[:0]
}

// AddSlice appends a slice, merging it with the previous slice when it
// extends the same (machine, job) run contiguously.
func (s *Schedule) AddSlice(sl Slice) {
	if sl.End <= sl.Start {
		return
	}
	if n := len(s.Slices); n > 0 {
		last := &s.Slices[n-1]
		if last.Machine == sl.Machine && last.Job == sl.Job &&
			math.Abs(last.End-sl.Start) < 1e-9*(1+math.Abs(sl.Start)) {
			last.End = sl.End
			return
		}
	}
	s.Slices = append(s.Slices, sl)
}

// Validate checks the full divisible-load execution rules:
//   - each slice runs an eligible machine on a released job;
//   - no machine runs two jobs simultaneously;
//   - total processed work equals W_j for every job;
//   - no work is processed after the recorded completion, and the last
//     slice of each job ends at its completion time.
//
// reltol is the relative numeric tolerance (1e-6 is appropriate for the
// float64 fluid engine).
func (s *Schedule) Validate(inst *Instance, reltol float64) error {
	if reltol <= 0 {
		reltol = 1e-6
	}
	if err := s.Check(inst); err != nil {
		return err
	}
	// Per-machine overlap check.
	perMachine := make(map[MachineID][]Slice)
	for _, sl := range s.Slices {
		if sl.Job < 0 || int(sl.Job) >= inst.NumJobs() {
			return fmt.Errorf("model: slice references unknown job %d", sl.Job)
		}
		if sl.Machine < 0 || int(sl.Machine) >= inst.Platform.NumMachines() {
			return fmt.Errorf("model: slice references unknown machine %d", sl.Machine)
		}
		if !inst.Platform.Machine(sl.Machine).Hosts(inst.Jobs[sl.Job].Databank) {
			return fmt.Errorf("model: job %d scheduled on ineligible machine %d", sl.Job, sl.Machine)
		}
		if rj := inst.Jobs[sl.Job].Release; sl.Start < rj-reltol*(1+rj) {
			return fmt.Errorf("model: job %d starts at %v before release %v", sl.Job, sl.Start, rj)
		}
		perMachine[sl.Machine] = append(perMachine[sl.Machine], sl)
	}
	for mid, sls := range perMachine {
		for a := 1; a < len(sls); a++ {
			// Slices are appended in time order by all engines; verify.
			if sls[a].Start < sls[a-1].End-reltol*(1+math.Abs(sls[a-1].End)) {
				return fmt.Errorf("model: machine %d overlaps: [%v,%v] then [%v,%v]",
					mid, sls[a-1].Start, sls[a-1].End, sls[a].Start, sls[a].End)
			}
		}
	}
	// Work conservation and completion consistency.
	work := make([]float64, inst.NumJobs())
	lastEnd := make([]float64, inst.NumJobs())
	for _, sl := range s.Slices {
		work[sl.Job] += sl.Duration() * inst.Platform.Machine(sl.Machine).Speed
		if sl.End > lastEnd[sl.Job] {
			lastEnd[sl.Job] = sl.End
		}
	}
	for j := range inst.Jobs {
		w := inst.Jobs[j].Size
		if math.Abs(work[j]-w) > reltol*(1+w) {
			return fmt.Errorf("model: job %d processed %v of %v work units", j, work[j], w)
		}
		c := s.Completion[j]
		if math.Abs(lastEnd[j]-c) > reltol*(1+math.Abs(c)) {
			return fmt.Errorf("model: job %d last slice ends at %v, completion %v", j, lastEnd[j], c)
		}
	}
	return nil
}
