// Package model defines the platform and application model of the paper
// (§2.2): n divisible jobs with release dates, sizes and a databank
// dependence; m machines (sites) with speeds and hosted databanks. A job is
// eligible on a machine iff the machine hosts the job's databank — the
// "uniform machines with restricted availabilities" model.
//
// Sizes are expressed in abstract work units (the paper uses Mflop) and
// speeds in work units per second, i.e. speed_i = 1/p_i in the paper's
// notation.
package model

import (
	"fmt"
	"math"
	"sort"
)

// MachineID identifies a machine (a site of the GriPPS platform).
type MachineID int

// DatabankID identifies a protein databank.
type DatabankID int

// JobID identifies a job; jobs are numbered 0..n-1 by increasing release.
type JobID int

// Machine is one computational site. The paper defines sites of 10 identical
// processors all hosting the same databanks; for divisible load with no
// communication such a site is exactly one machine with the aggregated
// speed, so Speed is the site-level aggregate.
type Machine struct {
	ID        MachineID
	Name      string
	Speed     float64      // work units per second (= 1/p_i), > 0
	Databanks []DatabankID // databanks replicated at this site
}

// Hosts reports whether the machine holds databank db.
func (m *Machine) Hosts(db DatabankID) bool {
	for _, d := range m.Databanks {
		if d == db {
			return true
		}
	}
	return false
}

// Job is one motif-comparison request.
type Job struct {
	ID       JobID
	Name     string
	Release  float64 // r_j, seconds
	Size     float64 // W_j, work units, > 0
	Databank DatabankID
}

// Platform is an immutable set of machines plus the databank→machines index.
type Platform struct {
	machines   []Machine
	numBanks   int
	hosting    [][]MachineID // databank -> machines hosting it
	aggSpeed   []float64     // databank -> Σ speeds of hosting machines
	totalSpeed float64
}

// NewPlatform validates machines and builds the eligibility index.
// Every machine speed must be positive and every databank in [0, numBanks)
// must be hosted by at least one machine.
func NewPlatform(machines []Machine, numBanks int) (*Platform, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("model: platform needs at least one machine")
	}
	if numBanks <= 0 {
		return nil, fmt.Errorf("model: platform needs at least one databank")
	}
	p := &Platform{
		machines: append([]Machine(nil), machines...),
		numBanks: numBanks,
		hosting:  make([][]MachineID, numBanks),
		aggSpeed: make([]float64, numBanks),
	}
	for i := range p.machines {
		m := &p.machines[i]
		m.ID = MachineID(i)
		if m.Speed <= 0 || math.IsNaN(m.Speed) || math.IsInf(m.Speed, 0) {
			return nil, fmt.Errorf("model: machine %d has invalid speed %v", i, m.Speed)
		}
		p.totalSpeed += m.Speed
		seen := map[DatabankID]bool{}
		for _, db := range m.Databanks {
			if db < 0 || int(db) >= numBanks {
				return nil, fmt.Errorf("model: machine %d hosts unknown databank %d", i, db)
			}
			if seen[db] {
				return nil, fmt.Errorf("model: machine %d lists databank %d twice", i, db)
			}
			seen[db] = true
			p.hosting[db] = append(p.hosting[db], m.ID)
			p.aggSpeed[db] += m.Speed
		}
	}
	for db := 0; db < numBanks; db++ {
		if len(p.hosting[db]) == 0 {
			return nil, fmt.Errorf("model: databank %d is hosted nowhere", db)
		}
	}
	return p, nil
}

// Uniform returns a platform where every machine hosts the single databank 0
// — the unrestricted "uniform machines" model of Lemma 1.
func Uniform(speeds []float64) (*Platform, error) {
	ms := make([]Machine, len(speeds))
	for i, s := range speeds {
		ms[i] = Machine{Name: fmt.Sprintf("M%d", i+1), Speed: s, Databanks: []DatabankID{0}}
	}
	return NewPlatform(ms, 1)
}

// NumMachines returns the machine count m.
func (p *Platform) NumMachines() int { return len(p.machines) }

// NumDatabanks returns the databank count.
func (p *Platform) NumDatabanks() int { return p.numBanks }

// Machine returns machine i.
func (p *Platform) Machine(i MachineID) *Machine { return &p.machines[i] }

// Machines returns all machines (shared slice; treat as read-only).
func (p *Platform) Machines() []Machine { return p.machines }

// Eligible returns the machines hosting db (shared slice; read-only).
func (p *Platform) Eligible(db DatabankID) []MachineID { return p.hosting[db] }

// AggregateSpeed returns the summed speed of the machines hosting db.
func (p *Platform) AggregateSpeed(db DatabankID) float64 { return p.aggSpeed[db] }

// TotalSpeed returns the summed speed of all machines.
func (p *Platform) TotalSpeed() float64 { return p.totalSpeed }

// IsUniform reports whether every machine hosts every databank, in which
// case the instance reduces to the preemptive uni-processor model (Lemma 1).
func (p *Platform) IsUniform() bool {
	for db := 0; db < p.numBanks; db++ {
		if len(p.hosting[db]) != len(p.machines) {
			return false
		}
	}
	return true
}

// Instance couples a platform with a job stream.
type Instance struct {
	Platform *Platform
	Jobs     []Job

	alone []float64 // cached p*_j
}

// NewInstance validates jobs (positive sizes, known databanks, nonnegative
// releases), sorts them by release date and renumbers them, following the
// paper's convention that jobs are indexed by increasing release date.
func NewInstance(p *Platform, jobs []Job) (*Instance, error) {
	js := append([]Job(nil), jobs...)
	sort.SliceStable(js, func(a, b int) bool { return js[a].Release < js[b].Release })
	inst := &Instance{Platform: p, Jobs: js}
	for i := range inst.Jobs {
		j := &inst.Jobs[i]
		j.ID = JobID(i)
		if j.Name == "" {
			j.Name = fmt.Sprintf("J%d", i+1)
		}
		if j.Size <= 0 || math.IsNaN(j.Size) || math.IsInf(j.Size, 0) {
			return nil, fmt.Errorf("model: job %d has invalid size %v", i, j.Size)
		}
		if j.Release < 0 || math.IsNaN(j.Release) {
			return nil, fmt.Errorf("model: job %d has invalid release %v", i, j.Release)
		}
		if j.Databank < 0 || int(j.Databank) >= p.NumDatabanks() {
			return nil, fmt.Errorf("model: job %d references unknown databank %d", i, j.Databank)
		}
	}
	inst.alone = make([]float64, len(inst.Jobs))
	for i := range inst.Jobs {
		inst.alone[i] = inst.Jobs[i].Size / p.AggregateSpeed(inst.Jobs[i].Databank)
	}
	return inst, nil
}

// NumJobs returns n.
func (inst *Instance) NumJobs() int { return len(inst.Jobs) }

// Eligible returns the machines that may process job j.
func (inst *Instance) Eligible(j JobID) []MachineID {
	return inst.Platform.Eligible(inst.Jobs[j].Databank)
}

// AloneTime returns p*_j: the duration of job j alone on its eligible
// machines, W_j / Σ_{i ∈ elig(j)} speed_i. It is the denominator of the
// job's stretch and the slope of its deadline d̄_j(F) = r_j + F·p*_j.
func (inst *Instance) AloneTime(j JobID) float64 { return inst.alone[j] }

// Weight returns w_j = 1/p*_j, the stretch weight of job j.
func (inst *Instance) Weight(j JobID) float64 { return 1 / inst.alone[j] }

// Delta returns ∆, the ratio of the largest to the smallest job size, as
// used by the Bender heuristics. Sizes are measured as alone times so that
// heterogeneous speeds are factored out; on a uni-processor this is the
// classical size ratio.
func (inst *Instance) Delta() float64 {
	if len(inst.Jobs) == 0 {
		return 1
	}
	lo, hi := math.Inf(1), 0.0
	for j := range inst.Jobs {
		a := inst.alone[j]
		lo = math.Min(lo, a)
		hi = math.Max(hi, a)
	}
	return hi / lo
}

// MaxRelease returns the latest release date (0 for empty instances).
func (inst *Instance) MaxRelease() float64 {
	r := 0.0
	for j := range inst.Jobs {
		r = math.Max(r, inst.Jobs[j].Release)
	}
	return r
}

// TotalWork returns ΣW_j.
func (inst *Instance) TotalWork() float64 {
	w := 0.0
	for j := range inst.Jobs {
		w += inst.Jobs[j].Size
	}
	return w
}
