package model

import (
	"fmt"
	"math"
)

// Stream maintains a live, bounded-memory Instance over an open-ended job
// stream — the substrate of the serving daemon (internal/serve), where jobs
// arrive and complete indefinitely and batch Instance construction
// (NewInstance, which sorts and renumbers) would both break ID stability
// and grow without bound.
//
// Jobs are assigned slots: a JobID is a slot index, recycled through a
// LIFO free-list when the job is removed, so the Jobs slice is bounded by
// the maximum number of concurrently live jobs, not the stream length.
// Slot IDs are stable for a job's lifetime — which is exactly what the
// incremental solve session (offline.Session) needs to map its warm-start
// basis across events — and a removed job's data stays in place as a
// tombstone until its slot is reused, so whole-instance aggregates
// (Delta, TotalWork) degrade gracefully rather than reading zeros.
//
// Consumers must only surface live slots to schedulers (the serving loop
// drives policies through a sim context whose Released mask covers exactly
// the live set); nothing in the solver stack reads unreleased slots.
// A Stream is single-goroutine, like the loop that owns it.
type Stream struct {
	inst Instance
	live []bool
	free []JobID
}

// NewStream returns an empty stream over platform p.
func NewStream(p *Platform) *Stream {
	return &Stream{inst: Instance{Platform: p}}
}

// validateStreamJob mirrors NewInstance's per-job validation.
func (s *Stream) validateStreamJob(j Job) error {
	if j.Size <= 0 || math.IsNaN(j.Size) || math.IsInf(j.Size, 0) {
		return fmt.Errorf("model: stream job has invalid size %v", j.Size)
	}
	if j.Release < 0 || math.IsNaN(j.Release) {
		return fmt.Errorf("model: stream job has invalid release %v", j.Release)
	}
	if j.Databank < 0 || int(j.Databank) >= s.inst.Platform.NumDatabanks() {
		return fmt.Errorf("model: stream job references unknown databank %d", j.Databank)
	}
	return nil
}

// Add validates j, assigns it a slot (recycled first) and returns the slot
// ID, which is stable until Remove. The job's ID field is overwritten with
// the assigned slot; an empty Name gets the slot-derived default.
func (s *Stream) Add(j Job) (JobID, error) {
	if err := s.validateStreamJob(j); err != nil {
		return 0, err
	}
	var id JobID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = JobID(len(s.inst.Jobs))
		s.inst.Jobs = append(s.inst.Jobs, Job{})
		s.inst.alone = append(s.inst.alone, 0)
		s.live = append(s.live, false)
	}
	j.ID = id
	if j.Name == "" {
		j.Name = fmt.Sprintf("J%d", id)
	}
	s.inst.Jobs[id] = j
	s.inst.alone[id] = j.Size / s.inst.Platform.AggregateSpeed(j.Databank)
	s.live[id] = true
	return id, nil
}

// Remove frees id's slot for reuse. The slot's job data stays readable (a
// tombstone) until the slot is recycled by a later Add.
func (s *Stream) Remove(id JobID) error {
	if int(id) >= len(s.live) || !s.live[id] {
		return fmt.Errorf("model: stream slot %d is not live", id)
	}
	s.live[id] = false
	s.free = append(s.free, id)
	return nil
}

// Instance returns the live view of the stream. It is owned by the stream
// and mutated in place by Add/Remove; Jobs is indexed by slot and includes
// tombstones — callers must consult Live before trusting a slot.
func (s *Stream) Instance() *Instance { return &s.inst }

// Live reports whether slot id currently holds a live job.
func (s *Stream) Live(id JobID) bool {
	return int(id) < len(s.live) && s.live[id]
}

// Slots returns the current slot-table size (live + tombstoned).
func (s *Stream) Slots() int { return len(s.inst.Jobs) }

// NumLive returns the number of live jobs.
func (s *Stream) NumLive() int { return len(s.inst.Jobs) - len(s.free) }

// Restore rebuilds the stream with an explicit slot layout — the
// checkpoint/restore path of the serving daemon. slots[i] is the job held
// by (or tombstoned in) slot i, live[i] its liveness, and free the
// free-list in its original order (LIFO recycling makes the order part of
// the deterministic state). Live jobs are re-validated; tombstones are
// stored as-is and their alone-time left zero, which is safe because only
// live slots are ever surfaced to schedulers.
func (s *Stream) Restore(slots []Job, live []bool, free []JobID) error {
	if len(slots) != len(live) {
		return fmt.Errorf("model: stream restore: %d slots vs %d liveness flags", len(slots), len(live))
	}
	liveCnt := 0
	for _, l := range live {
		if l {
			liveCnt++
		}
	}
	if liveCnt+len(free) != len(slots) {
		return fmt.Errorf("model: stream restore: %d live + %d free != %d slots",
			liveCnt, len(free), len(slots))
	}
	seen := make([]bool, len(slots))
	for _, id := range free {
		if int(id) >= len(slots) || live[id] || seen[id] {
			return fmt.Errorf("model: stream restore: bad free slot %d", id)
		}
		seen[id] = true
	}
	s.inst.Jobs = append(s.inst.Jobs[:0], slots...)
	s.inst.alone = append(s.inst.alone[:0], make([]float64, len(slots))...)
	s.live = append(s.live[:0], live...)
	s.free = append(s.free[:0], free...)
	for i := range slots {
		if !live[i] {
			continue
		}
		if err := s.validateStreamJob(slots[i]); err != nil {
			return fmt.Errorf("model: stream restore slot %d: %w", i, err)
		}
		s.inst.Jobs[i].ID = JobID(i)
		s.inst.alone[i] = slots[i].Size / s.inst.Platform.AggregateSpeed(slots[i].Databank)
	}
	return nil
}

// Snapshot appends the stream's deterministic state to the given slices
// (which may be nil): the slot table, liveness mask and free-list, in the
// exact form Restore accepts.
func (s *Stream) Snapshot(slots []Job, live []bool, free []JobID) ([]Job, []bool, []JobID) {
	return append(slots, s.inst.Jobs...), append(live, s.live...), append(free, s.free...)
}
