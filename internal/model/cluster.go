package model

import (
	"fmt"
	"math"
	"sort"
)

// ClusterInstance couples one job stream with a cluster of scheduling
// nodes. Each node is a complete Platform — in the cluster world a "machine"
// is a whole paper-platform replica running its own local scheduler — and a
// job is *placed* onto exactly one node by a load balancer before being
// scheduled there locally. With one node the model degenerates to the
// single-platform Instance, which is the equivalence the cluster engine's
// tests pin bitwise.
//
// Jobs follow the Instance conventions: sorted by release date and
// renumbered 0..n-1, so arrival order is ID order.
type ClusterInstance struct {
	Nodes []*Platform
	Jobs  []Job
}

// NewClusterInstance validates the node set and the job stream. Every job
// must reference a databank known to every node, so any placement is
// feasible; per-node hosting is guaranteed by each node's own Platform
// validation.
func NewClusterInstance(nodes []*Platform, jobs []Job) (*ClusterInstance, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("model: cluster needs at least one node")
	}
	minBanks := nodes[0].NumDatabanks()
	for _, p := range nodes[1:] {
		if b := p.NumDatabanks(); b < minBanks {
			minBanks = b
		}
	}
	js := append([]Job(nil), jobs...)
	sort.SliceStable(js, func(a, b int) bool { return js[a].Release < js[b].Release })
	ci := &ClusterInstance{Nodes: nodes, Jobs: js}
	for i := range ci.Jobs {
		j := &ci.Jobs[i]
		j.ID = JobID(i)
		if j.Name == "" {
			j.Name = fmt.Sprintf("J%d", i+1)
		}
		if j.Size <= 0 || math.IsNaN(j.Size) || math.IsInf(j.Size, 0) {
			return nil, fmt.Errorf("model: cluster job %d has invalid size %v", i, j.Size)
		}
		if j.Release < 0 || math.IsNaN(j.Release) {
			return nil, fmt.Errorf("model: cluster job %d has invalid release %v", i, j.Release)
		}
		if j.Databank < 0 || int(j.Databank) >= minBanks {
			return nil, fmt.Errorf("model: cluster job %d references databank %d unknown to some node", i, j.Databank)
		}
	}
	return ci, nil
}

// Replicate builds a cluster of n identical replicas of platform p over the
// given jobs — the identical-parallel-machines setting of the
// Srivastav–Trystram comparison, and (n = 1) the single-platform base case.
func Replicate(p *Platform, n int, jobs []Job) (*ClusterInstance, error) {
	if n <= 0 {
		return nil, fmt.Errorf("model: cluster needs at least one replica, got %d", n)
	}
	nodes := make([]*Platform, n)
	for i := range nodes {
		nodes[i] = p
	}
	return NewClusterInstance(nodes, jobs)
}

// NumNodes returns the number of cluster nodes.
func (ci *ClusterInstance) NumNodes() int { return len(ci.Nodes) }

// NumJobs returns n.
func (ci *ClusterInstance) NumJobs() int { return len(ci.Jobs) }

// AloneOn returns p*_j as realised on node ni: the duration of job j alone
// on the node's machines hosting its databank. It is the stretch
// denominator of a job placed on ni; on identical replicas it coincides
// with the single-platform AloneTime.
func (ci *ClusterInstance) AloneOn(ni int, j JobID) float64 {
	return ci.Jobs[j].Size / ci.Nodes[ni].AggregateSpeed(ci.Jobs[j].Databank)
}

// Sub builds the single-platform sub-instance of node ni over the given
// global job IDs, which must be sorted by release (placement happens in
// arrival order, so per-node job lists are). The i-th entry of ids is the
// job holding local JobID i in the returned instance — NewInstance's stable
// sort preserves the already-sorted order.
func (ci *ClusterInstance) Sub(ni int, ids []JobID) (*Instance, error) {
	jobs := make([]Job, len(ids))
	for i, gj := range ids {
		jobs[i] = ci.Jobs[gj]
		if i > 0 && ci.Jobs[gj].Release < ci.Jobs[ids[i-1]].Release {
			return nil, fmt.Errorf("model: node %d job list not in release order at %d", ni, i)
		}
	}
	return NewInstance(ci.Nodes[ni], jobs)
}

// ClusterSchedule is a full cluster execution trace: the balancer's
// placement, the global per-job completions, and each node's local schedule
// over its sub-instance (local job IDs; NodeJobs maps them back).
type ClusterSchedule struct {
	Placement  []int     // job -> node index
	Completion []float64 // job -> completion time (NaN if unscheduled)
	NodeJobs   [][]JobID // node -> global job IDs in local-ID order
	NodeSched  []*Schedule
}

// NewClusterSchedule returns an empty cluster schedule for ci.
func NewClusterSchedule(ci *ClusterInstance) *ClusterSchedule {
	cs := &ClusterSchedule{
		Placement:  make([]int, ci.NumJobs()),
		Completion: make([]float64, ci.NumJobs()),
		NodeJobs:   make([][]JobID, ci.NumNodes()),
		NodeSched:  make([]*Schedule, ci.NumNodes()),
	}
	for j := range cs.Placement {
		cs.Placement[j] = -1
		cs.Completion[j] = math.NaN()
	}
	return cs
}

// Flow returns F_j = C_j − r_j.
func (cs *ClusterSchedule) Flow(ci *ClusterInstance, j JobID) float64 {
	return cs.Completion[j] - ci.Jobs[j].Release
}

// Stretch returns S_j = F_j / p*_j with the alone time taken on the node
// job j was placed on.
func (cs *ClusterSchedule) Stretch(ci *ClusterInstance, j JobID) float64 {
	return cs.Flow(ci, j) / ci.AloneOn(cs.Placement[j], j)
}

// MaxStretch returns max_j S_j.
func (cs *ClusterSchedule) MaxStretch(ci *ClusterInstance) float64 {
	v := 0.0
	for j := range ci.Jobs {
		v = math.Max(v, cs.Stretch(ci, JobID(j)))
	}
	return v
}

// SumStretch returns Σ_j S_j — the total stretch, the Srivastav–Trystram
// objective.
func (cs *ClusterSchedule) SumStretch(ci *ClusterInstance) float64 {
	v := 0.0
	for j := range ci.Jobs {
		v += cs.Stretch(ci, JobID(j))
	}
	return v
}

// Makespan returns max_j C_j.
func (cs *ClusterSchedule) Makespan(ci *ClusterInstance) float64 {
	v := 0.0
	for _, c := range cs.Completion {
		v = math.Max(v, c)
	}
	return v
}

// Validate checks the cluster execution rules: every job placed on exactly
// one node, every node schedule valid for its sub-instance, and the global
// completions consistent with the local ones.
func (cs *ClusterSchedule) Validate(ci *ClusterInstance, reltol float64) error {
	if len(cs.Placement) != ci.NumJobs() || len(cs.Completion) != ci.NumJobs() {
		return fmt.Errorf("model: cluster schedule sized for %d/%d jobs, instance has %d",
			len(cs.Placement), len(cs.Completion), ci.NumJobs())
	}
	seen := make([]bool, ci.NumJobs())
	for ni, ids := range cs.NodeJobs {
		for li, gj := range ids {
			if int(gj) >= ci.NumJobs() || seen[gj] {
				return fmt.Errorf("model: node %d lists job %d twice or out of range", ni, gj)
			}
			seen[gj] = true
			if cs.Placement[gj] != ni {
				return fmt.Errorf("model: job %d listed on node %d but placed on %d", gj, ni, cs.Placement[gj])
			}
			if c := cs.NodeSched[ni].Completion[li]; c != cs.Completion[gj] {
				return fmt.Errorf("model: job %d completion %v disagrees with node %d local %v",
					gj, cs.Completion[gj], ni, c)
			}
		}
		sub, err := ci.Sub(ni, ids)
		if err != nil {
			return err
		}
		if err := cs.NodeSched[ni].Validate(sub, reltol); err != nil {
			return fmt.Errorf("model: node %d: %w", ni, err)
		}
	}
	for j, ok := range seen {
		if !ok {
			return fmt.Errorf("model: job %d placed on no node", j)
		}
	}
	return nil
}
