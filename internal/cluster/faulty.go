package cluster

import (
	"fmt"
	"math"
	"sort"

	"stretchsched/internal/model"
)

// The fault event loop: with an active failure plan, Run switches from the
// PR 9 batch path to a unified virtual-time loop over job arrivals (and
// retries) and machine down/up events. Jobs running on a machine at its
// failure instant lose their completed-so-far work and re-enter the
// balancer after a capped exponential backoff; completions are the
// accounting drivers' own predicted instants (the local policy IS the
// schedule — fault mode therefore requires a list-policy local). The final
// ClusterSchedule carries placements (the completing node), completions
// and per-node job lists, but no per-node slice schedules: a schedule that
// was interrupted and re-run is not a single batch timetable.

// FaultStats counts what a failure plan did to one Run.
type FaultStats struct {
	MachineFailures int     // down events that hit the run's time range
	JobFailures     int     // job executions killed by a machine failure
	Replacements    int     // placements beyond a job's first
	Deferred        int     // arrivals deferred because every node was down
	MaxAttempts     int     // worst per-job placement count
	LostWork        float64 // completed-so-far work discarded by failures
}

// pendingArrival is one job waiting to be placed: its (re)arrival instant
// and global ID. Ordered by (t, g) — the same release-then-ID order the
// batch path places in.
type pendingArrival struct {
	t float64
	g model.JobID
}

func (w *World) pendingPush(p pendingArrival) {
	w.pending = append(w.pending, p)
	i := len(w.pending) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pendingLess(w.pending[i], w.pending[parent]) {
			break
		}
		w.pending[i], w.pending[parent] = w.pending[parent], w.pending[i]
		i = parent
	}
}

func (w *World) pendingPop() pendingArrival {
	top := w.pending[0]
	last := len(w.pending) - 1
	w.pending[0] = w.pending[last]
	w.pending = w.pending[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(w.pending) && pendingLess(w.pending[l], w.pending[small]) {
			small = l
		}
		if r < len(w.pending) && pendingLess(w.pending[r], w.pending[small]) {
			small = r
		}
		if small == i {
			break
		}
		w.pending[i], w.pending[small] = w.pending[small], w.pending[i]
		i = small
	}
	return top
}

func pendingLess(a, b pendingArrival) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.g < b.g
}

// machineEvent is one plan transition: node ni goes down (down=true) or
// comes back up at t.
type machineEvent struct {
	t    float64
	ni   int
	down bool
}

// runFaulty executes the fault event loop. Preconditions: resetNodes and
// lb.Init have run, the plan is non-nil with at least one failure.
func (w *World) runFaulty() (*model.ClusterSchedule, error) {
	// Per-run fault state.
	w.nodeDown = w.nodeDown[:0]
	for range w.ci.Nodes {
		w.nodeDown = append(w.nodeDown, false)
	}
	w.attempts = w.attempts[:0]
	for range w.ci.Jobs {
		w.attempts = append(w.attempts, 0)
	}
	w.pending = w.pending[:0]
	for gj := range w.ci.Jobs {
		w.pendingPush(pendingArrival{t: w.ci.Jobs[gj].Release, g: model.JobID(gj)})
	}

	// Flatten the plan into one sorted event list: by time, ups before
	// downs (a machine recovering at t can accept an arrival at t), then
	// by node.
	var events []machineEvent
	for ni := 0; ni < w.ci.NumNodes(); ni++ {
		for _, iv := range w.plan.Intervals(ni) {
			events = append(events,
				machineEvent{t: iv.Down, ni: ni, down: true},
				machineEvent{t: iv.Up, ni: ni, down: false})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		ea, eb := events[a], events[b]
		if ea.t != eb.t {
			return ea.t < eb.t
		}
		if ea.down != eb.down {
			return !ea.down
		}
		return ea.ni < eb.ni
	})

	cs := model.NewClusterSchedule(w.ci)
	mi := 0
	for len(w.pending) > 0 || mi < len(events) {
		tEvt, tArr := inf(), inf()
		if mi < len(events) {
			tEvt = events[mi].t
		}
		if len(w.pending) > 0 {
			tArr = w.pending[0].t
		}
		t := tEvt
		if tArr < t {
			t = tArr
		}
		// Completions due by t commit first: a job finishing exactly at a
		// failure instant counts as completed, not failed.
		if err := w.advanceAll(t, cs); err != nil {
			return nil, err
		}
		if tEvt <= tArr {
			ev := events[mi]
			mi++
			if ev.down {
				w.fstats.MachineFailures++
				w.failNode(ev.ni, ev.t)
			} else {
				w.nodeDown[ev.ni] = false
			}
			continue
		}
		p := w.pendingPop()
		up := w.UpNodes()
		if len(up) == 0 {
			// Every machine is down: defer to the earliest recovery.
			minUp := inf()
			for ni := 0; ni < w.ci.NumNodes(); ni++ {
				if at := w.plan.UpAt(ni, p.t); at < minUp {
					minUp = at
				}
			}
			if !(minUp > p.t) {
				return nil, fmt.Errorf("cluster: all nodes down at %v with no recovery after", p.t)
			}
			w.fstats.Deferred++
			w.pendingPush(pendingArrival{t: minUp, g: p.g})
			continue
		}
		ni, err := w.lb.Place(w, p.g)
		if err != nil {
			return nil, fmt.Errorf("cluster: %s placing job %d: %w", w.lb.Name(), p.g, err)
		}
		if ni < 0 || ni >= len(w.nodes) || !w.NodeUp(ni) {
			return nil, fmt.Errorf("cluster: %s placed job %d on unavailable node %d", w.lb.Name(), p.g, ni)
		}
		if err := w.nodes[ni].placeAt(w.ci, p.g, p.t); err != nil {
			return nil, fmt.Errorf("cluster: node %d admitting job %d: %w", ni, p.g, err)
		}
		w.attempts[p.g]++
		if w.attempts[p.g] > 1 {
			w.fstats.Replacements++
		}
		if w.attempts[p.g] > w.fstats.MaxAttempts {
			w.fstats.MaxAttempts = w.attempts[p.g]
		}
	}
	// No further arrivals or failures: drain every node to completion.
	if err := w.advanceAll(inf(), cs); err != nil {
		return nil, err
	}
	for g := range cs.Completion {
		if cs.Placement[g] < 0 {
			return nil, fmt.Errorf("cluster: job %d never completed under the fault plan", g)
		}
	}
	return cs, nil
}

// advanceAll moves every node's clock to t, recording committed
// completions into cs. t = +Inf drains completions without advancing the
// clocks past the last one.
func (w *World) advanceAll(t float64, cs *model.ClusterSchedule) error {
	for ni, n := range w.nodes {
		for {
			id, at, ok := n.drv.NextCompletion()
			if !ok || at > t {
				break
			}
			if dt := at - n.drv.Now(); dt > 0 {
				n.drv.Advance(dt)
			}
			g := n.globalOf[id]
			n.drv.Complete(id)
			if err := n.stream.Remove(id); err != nil {
				return fmt.Errorf("cluster: node %d completing job %d: %w", ni, g, err)
			}
			n.globalOf[id] = -1
			cs.Placement[g] = ni
			cs.Completion[g] = at
			cs.NodeJobs[ni] = append(cs.NodeJobs[ni], g)
			if n.drv.NumActive() > 0 {
				n.drv.Replan(n.pol)
			}
		}
		if t < inf() && t > n.drv.Now() {
			n.drv.Advance(t - n.drv.Now())
		}
	}
	return nil
}

// failNode marks node ni down at instant t and fails every job still
// active on it: completed-so-far work is lost and each job re-enters the
// pending heap after its backoff, to be re-placed from scratch.
func (w *World) failNode(ni int, t float64) {
	w.nodeDown[ni] = true
	n := w.nodes[ni]
	// Snapshot the active set: removal mutates it.
	ids := append([]model.JobID(nil), n.drv.Ctx().Active()...)
	for _, id := range ids {
		g := n.globalOf[id]
		lost := w.ci.Jobs[g].Size - n.drv.Remaining(id)
		if lost > 0 {
			w.fstats.LostWork += lost
		}
		w.fstats.JobFailures++
		n.drv.Complete(id)
		if err := n.stream.Remove(id); err != nil {
			// Unreachable: the slot was live by construction. Surface loudly
			// rather than silently dropping the job.
			panic(fmt.Sprintf("cluster: failing node %d job %d: %v", ni, g, err))
		}
		n.globalOf[id] = -1
		w.pendingPush(pendingArrival{t: t + w.backoff.Delay(w.attempts[g]), g: g})
	}
}

// placeAt admits global job gj into the node's stream and accounting at
// instant t — the job's effective (re)release. The full size is restored:
// work done before a failure is lost.
func (n *node) placeAt(ci *model.ClusterInstance, gj model.JobID, t float64) error {
	j := ci.Jobs[gj]
	id, err := n.stream.Add(model.Job{Name: j.Name, Release: t, Size: j.Size, Databank: j.Databank})
	if err != nil {
		return err
	}
	for int(id) >= len(n.globalOf) {
		n.globalOf = append(n.globalOf, -1)
	}
	n.globalOf[id] = gj
	n.drv.Arrive(id, j.Size)
	n.drv.Replan(n.pol)
	return nil
}

func inf() float64 { return math.Inf(1) }
