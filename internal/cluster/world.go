// Package cluster is the multi-machine world on top of the single-platform
// engine stack: M nodes (each a full model.Platform replica running its own
// local scheduler) behind a pluggable load-balancer seam. A job is *placed*
// onto exactly one node at its arrival instant — the balancer sees only
// each node's online accounting, never the future — and is then *scheduled*
// there by the node's local policy.
//
// The event loop mirrors the serving daemon (internal/serve): each node
// carries a model.Stream + sim.Driver pair advanced to every arrival
// instant, committing completions at their predicted instants, so balancer
// decisions are a deterministic function of (instance, balancer, seed) —
// independent of worker count or wall clock. Final per-node schedules are
// produced by re-running the node's sub-instance through the ordinary batch
// engine paths, which is what makes a 1-node cluster bitwise identical to
// the single-platform pipeline and lets planner-backed schedulers (Offline,
// Online-EGDF) act as local schedulers unchanged.
package cluster

import (
	"fmt"

	"stretchsched/internal/fault"
	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// Local supplies a node's scheduling machinery. NewPolicy returns a fresh
// accounting policy instance — drivers and lookaheads each own one, so
// stateful policies never share state across nodes. Run produces the node's
// final schedule over its sub-instance; the result only needs to stay valid
// until the next Run call (the world copies it), so engine-owned schedules
// are fine.
type Local struct {
	Name      string
	NewPolicy func() sim.Policy
	Run       func(node int, inst *model.Instance) (*model.Schedule, error)
}

// PolicyLocal wraps a list policy as a Local: accounting and final
// scheduling both use fresh instances of the policy, the latter through one
// shared engine.
func PolicyLocal(mk func() sim.Policy) Local {
	eng := sim.NewEngine()
	return Local{
		Name:      mk().Name(),
		NewPolicy: mk,
		Run: func(_ int, inst *model.Instance) (*model.Schedule, error) {
			return eng.RunList(inst, mk())
		},
	}
}

// LB decides, at each arrival instant, which node a job is placed on.
// Init runs at the start of every World.Run — balancers reseed their RNG
// there so placements are a pure function of (instance, seed).
type LB interface {
	Name() string
	Init(w *World)
	Place(w *World, j model.JobID) (int, error)
}

// Load is the read-only accounting view of one node a balancer sees at a
// placement instant.
type Load struct {
	Active        int     // released, unfinished jobs
	Backlog       float64 // total remaining work
	TotalSpeed    float64 // node's summed machine speed
	EstMaxStretch float64 // driver estimate over the active set
}

// World drives one cluster execution: the arrival loop, the per-node
// accounting, and the final per-node schedules.
type World struct {
	ci    *model.ClusterInstance
	lb    LB
	local Local
	seed  int64

	nodes   []*node
	scratch *sim.Engine // Ideal lookahead simulations
	tmpJobs []model.Job
	tmpOrig []lookJob

	// Fault injection (nil plan = the perfect world of PR 9). All per-run
	// fault state (down flags, attempt counts, stats, the pending heap)
	// is reset at every Run, so reused worlds stay bitwise reproducible.
	plan     *fault.Plan
	backoff  fault.Backoff
	nodeDown []bool
	attempts []int
	pending  []pendingArrival
	fstats   FaultStats
	upList   []int
}

// lookJob maps a lookahead job back to its original stretch denominator.
type lookJob struct {
	release float64
	alone   float64
}

// node is one machine of the world: a live stream + driver running the
// accounting policy, plus the placement record.
type node struct {
	stream   *model.Stream
	drv      *sim.Driver
	pol      sim.Policy
	jobs     []model.JobID // global IDs in placement (= release) order
	globalOf []model.JobID // slot -> global ID (-1 when tombstoned)
}

// New returns a world over ci using balancer lb and local scheduling
// machinery local. seed feeds the balancer's RNG (Init) at each Run.
func New(ci *model.ClusterInstance, lb LB, local Local, seed int64) (*World, error) {
	if lb == nil || local.NewPolicy == nil || local.Run == nil {
		return nil, fmt.Errorf("cluster: balancer and local scheduler are required")
	}
	return &World{ci: ci, lb: lb, local: local, seed: seed, scratch: sim.NewEngine()}, nil
}

// Instance returns the cluster instance the world runs.
func (w *World) Instance() *model.ClusterInstance { return w.ci }

// NumNodes returns M.
func (w *World) NumNodes() int { return w.ci.NumNodes() }

// Seed returns the balancer seed for this world.
func (w *World) Seed() int64 { return w.seed }

// SetFaults installs a failure plan and retry backoff. A nil plan (or a
// plan without failures) keeps the perfect-world batch path; Run output is
// then bitwise identical to a world without faults. The plan must cover
// exactly this world's machines.
func (w *World) SetFaults(p *fault.Plan, b fault.Backoff) error {
	if p != nil && p.NumNodes() != w.ci.NumNodes() {
		return fmt.Errorf("cluster: fault plan covers %d nodes, world has %d",
			p.NumNodes(), w.ci.NumNodes())
	}
	w.plan = p
	w.backoff = b
	return nil
}

// FaultStats returns the fault counters of the most recent Run (zero when
// no plan is installed or the plan has no failures).
func (w *World) FaultStats() FaultStats { return w.fstats }

// NodeUp reports whether node ni is up at the current instant. Outside a
// fault run every node is always up.
func (w *World) NodeUp(ni int) bool {
	return len(w.nodeDown) == 0 || !w.nodeDown[ni]
}

// UpNodes returns the indices of the currently up nodes, ascending. The
// slice is scratch owned by the world — valid until the next call. With no
// failures it is always [0..M), which is what keeps the failure-aware
// balancers bitwise identical to their PR 9 selves on a perfect world.
func (w *World) UpNodes() []int {
	w.upList = w.upList[:0]
	for ni := 0; ni < w.ci.NumNodes(); ni++ {
		if w.NodeUp(ni) {
			w.upList = append(w.upList, ni)
		}
	}
	return w.upList
}

// Load returns node ni's accounting view at the current instant.
func (w *World) Load(ni int) Load {
	n := w.nodes[ni]
	return Load{
		Active:        n.drv.NumActive(),
		Backlog:       n.drv.Backlog(),
		TotalSpeed:    w.ci.Nodes[ni].TotalSpeed(),
		EstMaxStretch: n.drv.EstMaxStretch(),
	}
}

// PredictStretch is the stretch-aware placement estimate for putting job j
// on node ni right now: the worse of the node's current estimated max
// stretch and the new job's own estimate under the node draining its whole
// backlog plus the job at full speed.
func (w *World) PredictStretch(ni int, j model.JobID) float64 {
	ld := w.Load(ni)
	est := (ld.Backlog + w.ci.Jobs[j].Size) / ld.TotalSpeed / w.ci.AloneOn(ni, j)
	if ld.EstMaxStretch > est {
		return ld.EstMaxStretch
	}
	return est
}

// Lookahead simulates node ni's local policy over its residual active set
// plus job j and returns the realised max stretch (against the jobs'
// original releases) — the omniscient signal the Ideal balancer ranks
// nodes by — plus the candidate job's own predicted completion instant,
// which the fault-aware Ideal checks against the failure plan. It costs a
// full local simulation per candidate node.
func (w *World) Lookahead(ni int, j model.JobID) (worst, jobDone float64, err error) {
	n := w.nodes[ni]
	now := n.drv.Now()
	w.tmpJobs = w.tmpJobs[:0]
	w.tmpOrig = w.tmpOrig[:0]
	for _, id := range n.drv.Ctx().Active() {
		g := n.globalOf[id]
		release, alone := w.ci.Jobs[g].Release, w.ci.AloneOn(ni, g)
		rem := n.drv.Remaining(id)
		if rem <= 0 {
			// Completes at this very instant; its stretch is already fixed.
			if s := (now - release) / alone; s > worst {
				worst = s
			}
			continue
		}
		w.tmpJobs = append(w.tmpJobs, model.Job{Size: rem, Databank: w.ci.Jobs[g].Databank})
		w.tmpOrig = append(w.tmpOrig, lookJob{release: release, alone: alone})
	}
	w.tmpJobs = append(w.tmpJobs, model.Job{Size: w.ci.Jobs[j].Size, Databank: w.ci.Jobs[j].Databank})
	w.tmpOrig = append(w.tmpOrig, lookJob{release: w.ci.Jobs[j].Release, alone: w.ci.AloneOn(ni, j)})

	// All releases are zero, so NewInstance's stable sort keeps the append
	// order and local ID i maps to tmpOrig[i] (the candidate job is the
	// last entry); completions are relative to the placement instant.
	tmp, err := model.NewInstance(w.ci.Nodes[ni], w.tmpJobs)
	if err != nil {
		return 0, 0, err
	}
	sched, err := w.scratch.RunList(tmp, w.local.NewPolicy())
	if err != nil {
		return 0, 0, err
	}
	for i := range tmp.Jobs {
		s := (now + sched.Completion[i] - w.tmpOrig[i].release) / w.tmpOrig[i].alone
		if s > worst {
			worst = s
		}
	}
	jobDone = now + sched.Completion[len(tmp.Jobs)-1]
	return worst, jobDone, nil
}

// Run executes the full cluster trace: arrivals placed in release order,
// per-node accounting advanced between events, then one batch run per node
// over its sub-instance. Worlds are reusable; every Run starts from fresh
// node state and a reseeded balancer. With an active failure plan
// (SetFaults) the fault event loop replaces the batch path: jobs caught on
// a failing machine lose their work and re-enter the balancer after a
// backoff, and completions come from the accounting drivers themselves.
func (w *World) Run() (*model.ClusterSchedule, error) {
	w.resetNodes()
	w.fstats = FaultStats{}
	w.lb.Init(w)
	if w.plan != nil && w.plan.HasFailures() {
		return w.runFaulty()
	}

	for gj := range w.ci.Jobs {
		t := w.ci.Jobs[gj].Release
		for ni, n := range w.nodes {
			if err := n.advanceTo(t); err != nil {
				return nil, fmt.Errorf("cluster: node %d accounting: %w", ni, err)
			}
		}
		ni, err := w.lb.Place(w, model.JobID(gj))
		if err != nil {
			return nil, fmt.Errorf("cluster: %s placing job %d: %w", w.lb.Name(), gj, err)
		}
		if ni < 0 || ni >= len(w.nodes) {
			return nil, fmt.Errorf("cluster: %s placed job %d on node %d of %d", w.lb.Name(), gj, ni, len(w.nodes))
		}
		if err := w.nodes[ni].place(w.ci, model.JobID(gj)); err != nil {
			return nil, fmt.Errorf("cluster: node %d admitting job %d: %w", ni, gj, err)
		}
	}

	cs := model.NewClusterSchedule(w.ci)
	for ni, n := range w.nodes {
		cs.NodeJobs[ni] = append([]model.JobID(nil), n.jobs...)
		sub, err := w.ci.Sub(ni, n.jobs)
		if err != nil {
			return nil, err
		}
		sched, err := w.local.Run(ni, sub)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d %s: %w", ni, w.local.Name, err)
		}
		cp := &model.Schedule{
			Result: model.Result{Completion: append([]float64(nil), sched.Completion...)},
			Slices: append([]model.Slice(nil), sched.Slices...),
		}
		cs.NodeSched[ni] = cp
		for li, g := range n.jobs {
			cs.Placement[g] = ni
			cs.Completion[g] = cp.Completion[li]
		}
	}
	return cs, nil
}

// resetNodes rebuilds every node's stream/driver/policy state for a fresh
// Run.
func (w *World) resetNodes() {
	w.nodes = w.nodes[:0]
	for range w.ci.Nodes {
		w.nodes = append(w.nodes, nil)
	}
	for ni := range w.nodes {
		st := model.NewStream(w.ci.Nodes[ni])
		drv := sim.NewDriver(st.Instance())
		pol := w.local.NewPolicy()
		pol.Init(st.Instance())
		w.nodes[ni] = &node{stream: st, drv: drv, pol: pol}
	}
}

// advanceTo moves the node's accounting clock to t, committing completions
// at their predicted instants exactly as the serving loop does.
func (n *node) advanceTo(t float64) error {
	for {
		id, at, ok := n.drv.NextCompletion()
		if !ok || at > t {
			break
		}
		if dt := at - n.drv.Now(); dt > 0 {
			n.drv.Advance(dt)
		}
		n.drv.Complete(id)
		if err := n.stream.Remove(id); err != nil {
			return err
		}
		n.globalOf[id] = -1
		if n.drv.NumActive() > 0 {
			n.drv.Replan(n.pol)
		}
	}
	if t > n.drv.Now() {
		n.drv.Advance(t - n.drv.Now())
	}
	return nil
}

// place admits global job gj into the node's stream and accounting.
func (n *node) place(ci *model.ClusterInstance, gj model.JobID) error {
	j := ci.Jobs[gj]
	id, err := n.stream.Add(model.Job{Name: j.Name, Release: j.Release, Size: j.Size, Databank: j.Databank})
	if err != nil {
		return err
	}
	for int(id) >= len(n.globalOf) {
		n.globalOf = append(n.globalOf, -1)
	}
	n.globalOf[id] = gj
	n.drv.Arrive(id, j.Size)
	n.drv.Replan(n.pol)
	n.jobs = append(n.jobs, gj)
	return nil
}
