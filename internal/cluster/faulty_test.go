package cluster_test

import (
	"math"
	"testing"

	"stretchsched/internal/cluster"
	"stretchsched/internal/fault"
	"stretchsched/internal/model"
)

// planFor builds a failure plan sized to the instance's arrival window.
func planFor(t *testing.T, ci *model.ClusterInstance, rate float64, seed int64) *fault.Plan {
	t.Helper()
	horizon := 0.0
	for _, j := range ci.Jobs {
		if j.Release > horizon {
			horizon = j.Release
		}
	}
	if horizon == 0 {
		horizon = 100
	}
	p, err := fault.New(fault.Config{
		Nodes: ci.NumNodes(), Horizon: horizon, Rate: rate,
		MeanDown: horizon / 20, Seed: seed,
	})
	if err != nil {
		t.Fatalf("fault.New: %v", err)
	}
	return p
}

// TestZeroFailurePlanBitwise is the acceptance slice-equality check: a
// world with a zero-failure plan installed must produce placements and
// completions bitwise identical to the plain PR 9 cluster path — the fault
// machinery is inert by construction when nothing ever fails.
func TestZeroFailurePlanBitwise(t *testing.T) {
	inst := genInstance(t, 1.5, 40, 17)
	ci, err := model.Replicate(inst.Platform, 3, inst.Jobs)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	for name, lb := range allBalancers(t) {
		w, err := cluster.New(ci, lb, swrptLocal(), 5)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		ref, err := w.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		wf, err := cluster.New(ci, lb, swrptLocal(), 5)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		if err := wf.SetFaults(planFor(t, ci, 0, 77), fault.DefaultBackoff()); err != nil {
			t.Fatalf("%s: SetFaults: %v", name, err)
		}
		got, err := wf.Run()
		if err != nil {
			t.Fatalf("%s: faulty Run: %v", name, err)
		}
		for j := range ci.Jobs {
			if got.Placement[j] != ref.Placement[j] {
				t.Fatalf("%s: zero-failure plan moved job %d: %d -> %d",
					name, j, ref.Placement[j], got.Placement[j])
			}
			if got.Completion[j] != ref.Completion[j] {
				t.Fatalf("%s: zero-failure plan changed job %d completion: %v -> %v",
					name, j, ref.Completion[j], got.Completion[j])
			}
		}
		if fs := wf.FaultStats(); fs != (cluster.FaultStats{}) {
			t.Fatalf("%s: zero-failure plan recorded fault stats %+v", name, fs)
		}
	}
}

// TestFaultyRunRecovers drives every balancer through a plan with real
// failures: every job still completes, retry stats are recorded, and
// stretches stay sane (>= 1, finite) against the original releases — the
// retry-inflated stretch measurement.
func TestFaultyRunRecovers(t *testing.T) {
	inst := genInstance(t, 2.0, 40, 23)
	ci, err := model.Replicate(inst.Platform, 3, inst.Jobs)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	plan := planFor(t, ci, 3, 41)
	if !plan.HasFailures() {
		t.Fatal("rate-3 plan generated no failures; pick another seed")
	}
	sawFailure := false
	for name, lb := range allBalancers(t) {
		w, err := cluster.New(ci, lb, swrptLocal(), 9)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		if err := w.SetFaults(plan, fault.DefaultBackoff()); err != nil {
			t.Fatalf("%s: SetFaults: %v", name, err)
		}
		cs, err := w.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		for j := range ci.Jobs {
			if cs.Placement[j] < 0 || cs.Placement[j] >= ci.NumNodes() {
				t.Fatalf("%s: job %d placement %d", name, j, cs.Placement[j])
			}
			if math.IsNaN(cs.Completion[j]) || math.IsInf(cs.Completion[j], 0) {
				t.Fatalf("%s: job %d completion %v", name, j, cs.Completion[j])
			}
		}
		maxS := cs.MaxStretch(ci)
		if !(maxS >= 1-1e-9) || math.IsInf(maxS, 0) || math.IsNaN(maxS) {
			t.Fatalf("%s: MaxStretch = %v", name, maxS)
		}
		fs := w.FaultStats()
		if fs.MachineFailures == 0 {
			t.Fatalf("%s: plan has failures but none were recorded", name)
		}
		if fs.JobFailures > 0 {
			sawFailure = true
			if fs.Replacements == 0 || fs.MaxAttempts < 2 || fs.LostWork <= 0 {
				t.Fatalf("%s: inconsistent fault stats %+v", name, fs)
			}
		}
	}
	if !sawFailure {
		t.Fatal("no balancer saw a single job failure under a rate-3 plan")
	}
}

// TestFaultySeedStable extends TestSeedStablePlacement to faults-on: fresh
// and reused worlds under the same (plan, seed) reproduce placements,
// completions and fault stats exactly.
func TestFaultySeedStable(t *testing.T) {
	inst := genInstance(t, 2.0, 40, 11)
	ci, err := model.Replicate(inst.Platform, 4, inst.Jobs)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	plan := planFor(t, ci, 2, 61)
	if !plan.HasFailures() {
		t.Fatal("rate-2 plan generated no failures; pick another seed")
	}
	for name, lb := range allBalancers(t) {
		w, err := cluster.New(ci, lb, swrptLocal(), 3)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		if err := w.SetFaults(plan, fault.DefaultBackoff()); err != nil {
			t.Fatalf("%s: SetFaults: %v", name, err)
		}
		first, err := w.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		firstStats := w.FaultStats()
		// Reused world, same seed and plan.
		again, err := w.Run()
		if err != nil {
			t.Fatalf("%s: rerun: %v", name, err)
		}
		if w.FaultStats() != firstStats {
			t.Fatalf("%s: rerun fault stats %+v != %+v", name, w.FaultStats(), firstStats)
		}
		// Fresh world, same seed and plan.
		w2, _ := cluster.New(ci, lb, swrptLocal(), 3)
		if err := w2.SetFaults(plan, fault.DefaultBackoff()); err != nil {
			t.Fatalf("%s: SetFaults: %v", name, err)
		}
		fresh, err := w2.Run()
		if err != nil {
			t.Fatalf("%s: fresh run: %v", name, err)
		}
		if w2.FaultStats() != firstStats {
			t.Fatalf("%s: fresh fault stats %+v != %+v", name, w2.FaultStats(), firstStats)
		}
		for j := range ci.Jobs {
			if again.Placement[j] != first.Placement[j] || fresh.Placement[j] != first.Placement[j] {
				t.Fatalf("%s: placements not seed-stable for job %d", name, j)
			}
			if again.Completion[j] != first.Completion[j] || fresh.Completion[j] != first.Completion[j] {
				t.Fatalf("%s: completions not seed-stable for job %d", name, j)
			}
		}
	}
}

// TestSetFaultsValidates rejects a plan sized for the wrong cluster.
func TestSetFaultsValidates(t *testing.T) {
	inst := genInstance(t, 1.0, 20, 3)
	ci, err := model.Replicate(inst.Platform, 2, inst.Jobs)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	lb, _ := cluster.Balancers("stretch")
	w, err := cluster.New(ci, lb, swrptLocal(), 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, err := fault.New(fault.Config{Nodes: 3, Horizon: 10, Rate: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetFaults(p, fault.DefaultBackoff()); err == nil {
		t.Fatal("SetFaults accepted a 3-node plan on a 2-node world")
	}
}
