package cluster

import (
	"fmt"
	"math/rand"

	"stretchsched/internal/model"
)

// Random places each job on a uniformly random node — the baseline every
// informed balancer has to beat.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a random balancer; the RNG is seeded from the world at
// each Run.
func NewRandom() *Random { return &Random{} }

func (*Random) Name() string { return "random" }

func (b *Random) Init(w *World) { b.rng = rand.New(rand.NewSource(w.Seed())) }

func (b *Random) Place(w *World, _ model.JobID) (int, error) {
	up := w.UpNodes()
	if len(up) == 0 {
		return 0, fmt.Errorf("cluster: random: no node is up")
	}
	// With every node up this is Intn(M) over the identity list — the draw
	// sequence (and so every placement) is bitwise identical to the
	// fault-free balancer.
	return up[b.rng.Intn(len(up))], nil
}

// KChoices is the power-of-k-choices balancer: sample k nodes (with
// replacement) and place on the least loaded, measured as backlog drain
// time. On work-conserving nodes the backlog is invariant under the local
// policy, so its placements do not depend on which local scheduler runs.
type KChoices struct {
	K   int
	rng *rand.Rand
}

// NewKChoices returns a k-choices balancer (k defaults to 2 when < 1).
func NewKChoices(k int) *KChoices {
	if k < 1 {
		k = 2
	}
	return &KChoices{K: k}
}

func (*KChoices) Name() string { return "kchoices" }

func (b *KChoices) Init(w *World) { b.rng = rand.New(rand.NewSource(w.Seed())) }

func (b *KChoices) Place(w *World, _ model.JobID) (int, error) {
	up := w.UpNodes()
	if len(up) == 0 {
		return 0, fmt.Errorf("cluster: kchoices: no node is up")
	}
	best, bestDrain := -1, 0.0
	for i := 0; i < b.K; i++ {
		ni := up[b.rng.Intn(len(up))]
		ld := w.Load(ni)
		drain := ld.Backlog / ld.TotalSpeed
		if best == -1 || drain < bestDrain || (drain == bestDrain && ni < best) {
			best, bestDrain = ni, drain
		}
	}
	return best, nil
}

// StretchAware places each job on the node minimising the estimated
// post-placement max stretch from the existing driver accounting
// (Driver.EstMaxStretch plus the new job's own drain estimate). It reads
// every node but never simulates.
type StretchAware struct{}

// NewStretchAware returns a stretch-aware balancer.
func NewStretchAware() *StretchAware { return &StretchAware{} }

func (*StretchAware) Name() string { return "stretch" }

func (*StretchAware) Init(*World) {}

func (*StretchAware) Place(w *World, j model.JobID) (int, error) {
	best, bestEst := -1, 0.0
	for _, ni := range w.UpNodes() {
		if est := w.PredictStretch(ni, j); best == -1 || est < bestEst {
			best, bestEst = ni, est
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("cluster: stretch: no node is up")
	}
	return best, nil
}

// Ideal is the omniscient least-stretch balancer: for every candidate node
// it simulates the local policy over the node's residual state plus the new
// job and places where the realised max stretch is smallest. It is the
// quality ceiling for placement signals (at M full local simulations per
// arrival), not a practical balancer.
type Ideal struct{}

// NewIdeal returns an ideal balancer.
func NewIdeal() *Ideal { return &Ideal{} }

func (*Ideal) Name() string { return "ideal" }

func (*Ideal) Init(*World) {}

// Place ranks the up nodes by simulated max stretch. Ideal is the one
// balancer that sees the failure plan: a node whose next planned failure
// lands before the candidate job's predicted completion would kill the job
// mid-run, so such nodes are penalised — preferred only when every up node
// is doomed the same way.
func (*Ideal) Place(w *World, j model.JobID) (int, error) {
	best, bestEst := -1, 0.0
	bestDoomed := false
	for _, ni := range w.UpNodes() {
		est, done, err := w.Lookahead(ni, j)
		if err != nil {
			return 0, err
		}
		doomed := false
		if w.plan != nil {
			if at, ok := w.plan.NextDown(ni, w.nodes[ni].drv.Now()); ok && at < done {
				doomed = true
			}
		}
		better := best == -1 ||
			(bestDoomed && !doomed) ||
			(doomed == bestDoomed && est < bestEst)
		if better {
			best, bestEst, bestDoomed = ni, est, doomed
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("cluster: ideal: no node is up")
	}
	return best, nil
}

// Balancers returns a fresh balancer by name: "ideal", "random",
// "kchoices" (k = 2), "stretch", or "single" (the degenerate M = 1 alias,
// which always places on node 0 via the stretch-aware scan).
func Balancers(name string) (LB, bool) {
	switch name {
	case "ideal":
		return NewIdeal(), true
	case "random":
		return NewRandom(), true
	case "kchoices":
		return NewKChoices(2), true
	case "stretch", "single":
		return NewStretchAware(), true
	}
	return nil, false
}
