package cluster

import (
	"math/rand"
	"sort"
	"testing"

	"stretchsched/internal/model"
)

// TestPendingHeapOrder: interleaved out-of-order pushes pop back in
// strict (t, g) order. Regression for a sift-down that never descended
// below the root, which let later arrivals pop before earlier ones and
// fed runFaulty event times that ran backwards.
func TestPendingHeapOrder(t *testing.T) {
	w := &World{}
	for g, rel := range []float64{1, 2, 3, 10, 11, 12, 13} {
		w.pendingPush(pendingArrival{t: rel, g: model.JobID(g)})
	}
	prev := pendingArrival{t: -1}
	for len(w.pending) > 0 {
		p := w.pendingPop()
		if pendingLess(p, prev) {
			t.Fatalf("popped %v after %v: out of (t, g) order", p, prev)
		}
		prev = p
	}
}

// TestPendingHeapRandomized: pushes and pops interleave under random
// times (retries land mid-drain, as failNode does); every pop must
// return the minimum of what the heap holds at that instant, and the
// popped multiset must equal the pushed one.
func TestPendingHeapRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := &World{}
	var pushed, popped []pendingArrival
	for i := 0; i < 500; i++ {
		if len(w.pending) == 0 || rng.Intn(3) > 0 {
			p := pendingArrival{t: float64(rng.Intn(64)), g: model.JobID(i)}
			w.pendingPush(p)
			pushed = append(pushed, p)
		} else {
			p := w.pendingPop()
			for _, rest := range w.pending {
				if pendingLess(rest, p) {
					t.Fatalf("popped %v while %v was still in the heap", p, rest)
				}
			}
			popped = append(popped, p)
		}
	}
	for len(w.pending) > 0 {
		p := w.pendingPop()
		for _, rest := range w.pending {
			if pendingLess(rest, p) {
				t.Fatalf("popped %v while %v was still in the heap", p, rest)
			}
		}
		popped = append(popped, p)
	}
	if len(popped) != len(pushed) {
		t.Fatalf("popped %d of %d pushed", len(popped), len(pushed))
	}
	sort.Slice(pushed, func(a, b int) bool { return pendingLess(pushed[a], pushed[b]) })
	sort.Slice(popped, func(a, b int) bool { return pendingLess(popped[a], popped[b]) })
	for i := range pushed {
		if pushed[i] != popped[i] {
			t.Fatalf("multiset mismatch at %d: pushed %v, popped %v", i, pushed[i], popped[i])
		}
	}
}
