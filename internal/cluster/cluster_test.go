package cluster_test

import (
	"math"
	"testing"

	"stretchsched/internal/cluster"
	"stretchsched/internal/model"
	"stretchsched/internal/policy"
	"stretchsched/internal/sim"
	"stretchsched/internal/workload"
)

func genInstance(t *testing.T, density float64, targetJobs int, seed int64) *model.Instance {
	t.Helper()
	inst, err := workload.Config{
		Sites:        1,
		ProcsPerSite: 1,
		Databanks:    12,
		Availability: 1,
		Density:      density,
		TargetJobs:   targetJobs,
		SizeRange:    [2]float64{10, 200},
		Seed:         seed,
	}.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if inst.NumJobs() == 0 {
		t.Fatalf("seed %d generated no jobs", seed)
	}
	return inst
}

func swrptLocal() cluster.Local {
	return cluster.PolicyLocal(func() sim.Policy { return policy.SWRPT{} })
}

func allBalancers(t *testing.T) map[string]cluster.LB {
	t.Helper()
	out := map[string]cluster.LB{}
	for _, name := range []string{"single", "random", "kchoices", "stretch", "ideal"} {
		lb, ok := cluster.Balancers(name)
		if !ok {
			t.Fatalf("Balancers(%q) unknown", name)
		}
		out[name] = lb
	}
	return out
}

// TestMachinesOneBitwise is the tentpole equivalence guarantee: a 1-node
// cluster under every balancer must reproduce the single-platform engine's
// schedule bit for bit — completions and slices — because placement is
// forced and the node's sub-instance is the whole instance.
func TestMachinesOneBitwise(t *testing.T) {
	inst := genInstance(t, 1.5, 30, 42)
	ref, err := sim.NewEngine().RunList(inst, policy.SWRPT{})
	if err != nil {
		t.Fatalf("reference RunList: %v", err)
	}
	ci, err := model.Replicate(inst.Platform, 1, inst.Jobs)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	for name, lb := range allBalancers(t) {
		w, err := cluster.New(ci, lb, swrptLocal(), 7)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		cs, err := w.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		for j := range ci.Jobs {
			if cs.Placement[j] != 0 {
				t.Fatalf("%s: job %d placed on node %d, want 0", name, j, cs.Placement[j])
			}
			if cs.Completion[j] != ref.Completion[j] {
				t.Fatalf("%s: job %d completion %v != reference %v",
					name, j, cs.Completion[j], ref.Completion[j])
			}
		}
		if got, want := len(cs.NodeSched[0].Slices), len(ref.Slices); got != want {
			t.Fatalf("%s: %d slices, reference has %d", name, got, want)
		}
		for i, sl := range cs.NodeSched[0].Slices {
			if sl != ref.Slices[i] {
				t.Fatalf("%s: slice %d = %+v, reference %+v", name, i, sl, ref.Slices[i])
			}
		}
	}
}

// TestSeedStablePlacement pins placement to (instance, balancer, seed):
// fresh worlds and reused worlds with the same seed place identically, and
// the randomized balancers move at least one job when the seed changes.
func TestSeedStablePlacement(t *testing.T) {
	inst := genInstance(t, 2.0, 40, 11)
	ci, err := model.Replicate(inst.Platform, 4, inst.Jobs)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	for name, lb := range allBalancers(t) {
		w, err := cluster.New(ci, lb, swrptLocal(), 3)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		first, err := w.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		// Reused world, same seed.
		again, err := w.Run()
		if err != nil {
			t.Fatalf("%s: rerun: %v", name, err)
		}
		// Fresh world, same seed.
		w2, _ := cluster.New(ci, lb, swrptLocal(), 3)
		fresh, err := w2.Run()
		if err != nil {
			t.Fatalf("%s: fresh run: %v", name, err)
		}
		for j := range ci.Jobs {
			if again.Placement[j] != first.Placement[j] {
				t.Fatalf("%s: rerun moved job %d: %d -> %d",
					name, j, first.Placement[j], again.Placement[j])
			}
			if fresh.Placement[j] != first.Placement[j] {
				t.Fatalf("%s: fresh world moved job %d: %d -> %d",
					name, j, first.Placement[j], fresh.Placement[j])
			}
			if again.Completion[j] != first.Completion[j] || fresh.Completion[j] != first.Completion[j] {
				t.Fatalf("%s: completions not seed-stable for job %d", name, j)
			}
		}
	}
	// Randomized balancers must actually depend on the seed.
	for _, name := range []string{"random"} {
		lb, _ := cluster.Balancers(name)
		w1, _ := cluster.New(ci, lb, swrptLocal(), 3)
		a, err := w1.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		w2, _ := cluster.New(ci, lb, swrptLocal(), 4)
		b, err := w2.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		moved := false
		for j := range ci.Jobs {
			if a.Placement[j] != b.Placement[j] {
				moved = true
				break
			}
		}
		if !moved {
			t.Fatalf("%s: seeds 3 and 4 produced identical placements over %d jobs",
				name, ci.NumJobs())
		}
	}
}

// TestClusterScheduleValid checks every balancer produces a schedule that
// passes full cluster validation (placement consistency, per-node schedule
// validity, completion agreement) with sane metrics.
func TestClusterScheduleValid(t *testing.T) {
	inst := genInstance(t, 1.0, 30, 5)
	ci, err := model.Replicate(inst.Platform, 2, inst.Jobs)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	for name, lb := range allBalancers(t) {
		w, _ := cluster.New(ci, lb, swrptLocal(), 99)
		cs, err := w.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		if err := cs.Validate(ci, 1e-9); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
		maxS, sumS := cs.MaxStretch(ci), cs.SumStretch(ci)
		if !(maxS >= 1-1e-9) || math.IsInf(maxS, 0) || math.IsNaN(maxS) {
			t.Fatalf("%s: MaxStretch = %v", name, maxS)
		}
		if !(sumS >= float64(ci.NumJobs())*(1-1e-9)) || math.IsNaN(sumS) {
			t.Fatalf("%s: SumStretch = %v over %d jobs", name, sumS, ci.NumJobs())
		}
	}
}

// TestBalancersSpread sanity-checks that the load-aware balancers use more
// than one node on a 4-node cluster under heavy load.
func TestBalancersSpread(t *testing.T) {
	inst := genInstance(t, 3.0, 40, 21)
	ci, err := model.Replicate(inst.Platform, 4, inst.Jobs)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	for _, name := range []string{"random", "kchoices", "stretch", "ideal"} {
		lb, _ := cluster.Balancers(name)
		w, _ := cluster.New(ci, lb, swrptLocal(), 13)
		cs, err := w.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		used := map[int]bool{}
		for _, ni := range cs.Placement {
			used[ni] = true
		}
		if len(used) < 2 {
			t.Fatalf("%s: all %d jobs on one node", name, ci.NumJobs())
		}
	}
}
