module stretchsched

go 1.21
