package stretchsched

// One benchmark per table and figure of the paper's evaluation (§5), plus
// the §5.3 scheduler-overhead comparison, micro-benchmarks of the solver
// substrates, and ablations of the design choices called out in DESIGN.md.
//
// Table/figure benches run a scaled-down slice of the real experiment (the
// full reproduction is `go run ./cmd/experiments`); their purpose here is a
// stable, regression-detecting measurement of each experiment's pipeline.

import (
	"fmt"
	"runtime"
	"testing"

	"stretchsched/internal/cluster"
	"stretchsched/internal/core"
	"stretchsched/internal/exp"
	"stretchsched/internal/fault"
	"stretchsched/internal/flow"
	"stretchsched/internal/lp"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/online"
	"stretchsched/internal/policy"
	"stretchsched/internal/rat"
	"stretchsched/internal/serve"
	"stretchsched/internal/sim"
	"stretchsched/internal/uniproc"
	"stretchsched/internal/workload"
)

// benchGrid runs the grid slice selected by the table's filter, subsampled
// to at most six points so a bench iteration stays in the seconds range.
func benchGrid(b *testing.B, tableNum int) {
	b.Helper()
	spec, err := exp.TableByNumber(tableNum)
	if err != nil {
		b.Fatal(err)
	}
	var points []exp.GridPoint
	for _, p := range exp.DefaultGrid() {
		if spec.Filter == nil || spec.Filter(p) {
			points = append(points, p)
		}
	}
	step := (len(points) + 5) / 6
	var sample []exp.GridPoint
	for i := 0; i < len(points); i += step {
		sample = append(sample, points[i])
	}
	opts := exp.Options{Runs: 1, Seed: 42, TargetJobs: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := exp.RunGrid(sample, opts)
		rows := exp.Aggregate(results, nil, core.Table1Names())
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable01Aggregate(b *testing.B)      { benchGrid(b, 1) }
func BenchmarkTable02Sites3(b *testing.B)         { benchGrid(b, 2) }
func BenchmarkTable03Sites10(b *testing.B)        { benchGrid(b, 3) }
func BenchmarkTable04Sites20(b *testing.B)        { benchGrid(b, 4) }
func BenchmarkTable05Density075(b *testing.B)     { benchGrid(b, 5) }
func BenchmarkTable06Density100(b *testing.B)     { benchGrid(b, 6) }
func BenchmarkTable07Density125(b *testing.B)     { benchGrid(b, 7) }
func BenchmarkTable08Density150(b *testing.B)     { benchGrid(b, 8) }
func BenchmarkTable09Density200(b *testing.B)     { benchGrid(b, 9) }
func BenchmarkTable10Density300(b *testing.B)     { benchGrid(b, 10) }
func BenchmarkTable11Databanks3(b *testing.B)     { benchGrid(b, 11) }
func BenchmarkTable12Databanks10(b *testing.B)    { benchGrid(b, 12) }
func BenchmarkTable13Databanks20(b *testing.B)    { benchGrid(b, 13) }
func BenchmarkTable14Availability30(b *testing.B) { benchGrid(b, 14) }
func BenchmarkTable15Availability60(b *testing.B) { benchGrid(b, 15) }
func BenchmarkTable16Availability90(b *testing.B) { benchGrid(b, 16) }

// BenchmarkFigure3a measures the max-stretch-degradation sweep pipeline
// (optimised and non-optimised online vs the offline optimum).
func BenchmarkFigure3a(b *testing.B) {
	opts := exp.Fig3Options{
		Densities: []float64{0.25, 2.0}, JobLengths: []float64{10},
		Runs: 1, TargetJobs: 10, Seed: 7,
	}
	for i := 0; i < b.N; i++ {
		points := exp.RunFigure3(opts)
		if len(points) != 2 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkFigure3b measures the sum-stretch-gain sweep (same pipeline,
// reported metric differs; kept separate to mirror the paper's two panels).
func BenchmarkFigure3b(b *testing.B) {
	opts := exp.Fig3Options{
		Densities: []float64{0.0125, 4.0}, JobLengths: []float64{10},
		Runs: 1, TargetJobs: 10, Seed: 11,
	}
	for i := 0; i < b.N; i++ {
		points := exp.RunFigure3(opts)
		if len(points) != 2 {
			b.Fatal("bad sweep")
		}
	}
}

func benchInstance(b *testing.B, target int) *model.Instance {
	b.Helper()
	inst, err := workload.Config{
		Sites: 3, Databanks: 3, Availability: 0.6, Density: 1.5,
		TargetJobs: target, SizeRange: [2]float64{10, 200}, Seed: 20_06,
	}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkSchedulerOverhead reproduces the §5.3 overhead comparison: the
// paper reports ~0.28 s for its online heuristics, 0.54 s for the offline
// optimal and 19.76 s for Bender98 on 3-site/15-minute workloads. The
// ordering (cheap list policies ≪ online LP ≪ Bender98) is the claim.
func BenchmarkSchedulerOverhead(b *testing.B) {
	inst := benchInstance(b, 25)
	for _, name := range []string{"SWRPT", "MCT", "Online", "Online-EGDF", "Offline", "Bender98", "Bender02"} {
		s := core.MustGet(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkOfflineSolver(b *testing.B) {
	for _, target := range []int{10, 25, 50} {
		inst := benchInstance(b, target)
		prob := offline.FromInstance(inst)
		b.Run(fmt.Sprintf("jobs=%d", inst.NumJobs()), func(b *testing.B) {
			var s offline.Solver
			for i := 0; i < b.N; i++ {
				if _, err := s.OptimalStretch(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFeasibilityFlow(b *testing.B) {
	inst := benchInstance(b, 40)
	prob := offline.FromInstance(inst)
	f := prob.UpperBound()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !prob.Feasible(f) {
			b.Fatal("upper bound infeasible")
		}
	}
}

func BenchmarkSystem2Refine(b *testing.B) {
	inst := benchInstance(b, 40)
	prob := offline.FromInstance(inst)
	var s offline.Solver
	sol, err := s.OptimalStretch(prob)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Refine(sol.Stretch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFluidEngineSWRPT(b *testing.B) {
	inst := benchInstance(b, 60)
	s := core.MustGet("SWRPT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluidEngineSteadyState is the allocation budget of the engine
// overhaul: a reused sim.Engine replaying the list driver must report
// 0 allocs/op (enforced as a hard test in internal/sim; tracked here as a
// number alongside the other engine benchmarks).
func BenchmarkFluidEngineSteadyState(b *testing.B) {
	inst := benchInstance(b, 60)
	eng := sim.NewEngine()
	pol := policy.SWRPT{}
	if _, err := eng.RunList(inst, pol); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunList(inst, pol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannedEngine is the planned-path companion of
// BenchmarkFluidEngineSteadyState: one engine + one planner workspace
// replaying each planned (or planner-workspace-backed) scheduler through
// core.Runner, which caches the instances and wires the workspace. The
// allocs/op column is the headline: 0 for the offline planners, the
// online/Bender98 reduction the workspace overhaul bought, and for
// Offline-Exact the residual math/big escapes of the small-rational
// backend (its ns/op is the acceptance number of that fast path).
func BenchmarkPlannedEngine(b *testing.B) {
	inst := benchInstance(b, 25)
	runner := core.NewRunner()
	for _, name := range []string{"Offline", "Offline-Refined", "Offline-Exact", "Online", "Online-EDF", "Bender98"} {
		s := core.MustGet(name)
		if _, err := runner.Run(s, inst); err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(s, inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOfflineExactScale is the acceptance benchmark of the sparse
// revised simplex: Offline-Exact through core.Runner on paper-scale
// platforms (10 and 20 sites, the §5.3 grid's heavy tail), the instances
// that were impractical on the dense tableau — 16m20s at 10 sites on the
// measurement host, versus ~2s through the revised method, and 20 sites
// did not finish at all (~18s revised). CI records one iteration of each
// in BENCH_<sha>.json via the bench-smoke job.
func BenchmarkOfflineExactScale(b *testing.B) {
	for _, sites := range []int{10, 20} {
		inst, err := workload.Config{
			Sites: sites, Databanks: sites, Availability: 0.9, Density: 3.0,
			TargetJobs: 20, SizeRange: [2]float64{10, 200}, Seed: 9_000_009,
		}.Generate()
		if err != nil {
			b.Fatal(err)
		}
		runner := core.NewRunner()
		s := core.MustGet("Offline-Exact")
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(s, inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOfflineExactFloatHeavy is the acceptance benchmark of the
// 128-bit medium rational tier: Offline-Exact on generator workloads whose
// processing times carry full float64 mantissas over heterogeneous-speed
// platforms — the §5.3-style instances whose exact pivot products exceed 63
// bits at nearly every step. Before the medium tier those products escaped
// to allocating big.Rat values (13.8M allocs/run at 10 sites on the PR 4
// tree); with it they stay in inline fixed-width arithmetic, and the
// allocs/op column — recorded per commit in BENCH_<sha>.json by the
// bench-smoke job, with TestExactFloatHeavySteadyStateAllocs gating the
// steady state — is the number this tier is judged by.
func BenchmarkOfflineExactFloatHeavy(b *testing.B) {
	for _, sites := range []int{3, 10} {
		inst, err := workload.Config{
			Sites: sites, Databanks: sites, Availability: 0.9, Density: 3.0,
			TargetJobs: 25, SizeRange: [2]float64{10, 200}, Seed: 77_000_077,
		}.Generate()
		if err != nil {
			b.Fatal(err)
		}
		runner := core.NewRunner()
		s := core.MustGet("Offline-Exact")
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(s, inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchOnlineEvents replays Online-EGDF in Exact mode — one System (1)
// re-optimisation per arrival event — through one engine + workspace, with
// the incremental session warm (default) or forced cold (the ablation).
// Alongside ns/op for the whole replay it reports the per-event solve cost
// (ns/solve), the mean simplex iterations per event, and the fallback rate,
// all derived from the session's own counters.
func benchOnlineEvents(b *testing.B, cold bool) {
	b.Helper()
	inst := benchInstance(b, 25)
	eng := sim.NewEngine()
	e := online.NewEGDF()
	e.Solver.Exact = true
	ws := offline.NewWorkspace()
	e.SetWorkspace(ws)
	ws.Session().SetColdOnly(cold)
	if _, err := eng.RunList(inst, e); err != nil {
		b.Fatal(err)
	}
	st := ws.SessionStats()
	*st = lp.IncrementalStats{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunList(inst, e); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if solves := st.Cold + st.Warm + st.Fallback; solves > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(solves), "ns/solve")
		b.ReportMetric(float64(st.ColdIters+st.WarmIters)/float64(solves), "iters/solve")
		b.ReportMetric(float64(st.Fallback)/float64(b.N), "fallbacks/run")
	}
}

// BenchmarkOnlineEventSolve is the acceptance benchmark of the incremental
// re-optimisation layer (ROADMAP item 1): per-event warm-started System (1)
// solves on the online path. Its cold companion below re-solves every event
// from scratch through the identical session plumbing, so the pair isolates
// exactly what warm-starting buys; both are recorded per commit in
// BENCH_<sha>.json by the bench-smoke job.
func BenchmarkOnlineEventSolve(b *testing.B) { benchOnlineEvents(b, false) }

// BenchmarkOnlineEventSolveCold is the cold-ablation companion of
// BenchmarkOnlineEventSolve.
func BenchmarkOnlineEventSolveCold(b *testing.B) { benchOnlineEvents(b, true) }

// benchServeLoop replays a generated workload through a serve.Loop — one
// arrival event per job, one completion event per job, a replan at every
// event — and reports the sustained event rate.
func benchServeLoop(b *testing.B, policy string, exact bool, cfg workload.Config) {
	b.Helper()
	inst, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]serve.SubmitRequest, inst.NumJobs())
	for i, j := range inst.Jobs {
		reqs[i] = serve.SubmitRequest{Name: j.Name, Size: j.Size, Databank: j.Databank, Release: j.Release}
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := offline.NewWorkspace()
		sched, err := core.New(policy, core.WithWorkspace(ws))
		if err != nil {
			b.Fatal(err)
		}
		if exact {
			sched.(core.PolicyBacked).Policy().(*online.EGDF).Solver.Exact = true
		}
		loop, err := serve.New(serve.Config{Platform: inst.Platform, Scheduler: sched, Workspace: ws})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reqs {
			if _, err := loop.Submit(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := loop.Drain(); err != nil {
			b.Fatal(err)
		}
		snap, err := loop.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		events += snap.Counters.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkServeEventLoop is the serving daemon's acceptance benchmark
// (ROADMAP item 1): sustained events/sec through the full admission path —
// stream slot management, event-clock advance, per-event replan, decision
// accounting. The sustained sub-bench replays ≥10⁴ events under a cheap
// list policy, measuring the loop machinery itself; the egdf sub-benches
// replay a paper-scale GriPPS day under the LP-based online policy (float
// and exact-incremental), where the per-event re-optimisation dominates.
func BenchmarkServeEventLoop(b *testing.B) {
	gripps := workload.Config{Sites: 6, Databanks: 12, Availability: 0.5, Density: 0.8}
	sustained := gripps
	sustained.Seed, sustained.TargetJobs = 1, 5000
	egdf := gripps
	egdf.Seed, egdf.TargetJobs = 7, 40
	b.Run("policy=SWRPT/sustained", func(b *testing.B) { benchServeLoop(b, "SWRPT", false, sustained) })
	b.Run("policy=Online-EGDF/float", func(b *testing.B) { benchServeLoop(b, "Online-EGDF", false, egdf) })
	b.Run("policy=Online-EGDF/exact", func(b *testing.B) { benchServeLoop(b, "Online-EGDF", true, egdf) })
}

// BenchmarkClusterWorld measures one cluster world end to end — per-node
// online accounting advanced at every arrival, a placement decision per
// job, then the per-node batch runs — across machine counts and balancers
// under the SWRPT local scheduler. The ideal balancer's scratch-engine
// lookahead (M candidate schedules per arrival) is the expensive outlier
// the cheaper signals are judged against; recorded per commit in
// BENCH_<sha>.json by the bench-smoke job.
func BenchmarkClusterWorld(b *testing.B) {
	for _, machines := range []int{2, 4} {
		inst, err := workload.Config{
			Sites: 1, ProcsPerSite: 1, Databanks: 12, Availability: 1,
			Density: 1.5 * float64(machines), TargetJobs: 30 * machines,
			SizeRange: [2]float64{10, 200}, Seed: 20_06,
		}.Generate()
		if err != nil {
			b.Fatal(err)
		}
		ci, err := model.Replicate(inst.Platform, machines, inst.Jobs)
		if err != nil {
			b.Fatal(err)
		}
		runner := core.NewClusterRunner()
		for _, name := range []string{"random", "kchoices", "stretch", "ideal"} {
			lb, ok := cluster.Balancers(name)
			if !ok {
				b.Fatalf("unknown balancer %s", name)
			}
			b.Run(fmt.Sprintf("machines=%d/balancer=%s", machines, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cs, err := runner.Run("SWRPT", ci, lb, 20_06)
					if err != nil {
						b.Fatal(err)
					}
					if cs.MaxStretch(ci) < 1 {
						b.Fatal("degenerate schedule")
					}
				}
			})
		}
	}
}

// BenchmarkFaultyWorld measures the fault-injected cluster world — the
// event loop interleaving machine down/up intervals with arrivals, work
// lost on failure, and backoff-delayed re-placement — against the
// zero-failure batch path BenchmarkClusterWorld measures. The delta is
// the price of fault accounting under the stretch balancer.
func BenchmarkFaultyWorld(b *testing.B) {
	for _, machines := range []int{2, 4} {
		inst, err := workload.Config{
			Sites: 1, ProcsPerSite: 1, Databanks: 12, Availability: 1,
			Density: 1.5 * float64(machines), TargetJobs: 30 * machines,
			SizeRange: [2]float64{10, 200}, Seed: 20_06,
		}.Generate()
		if err != nil {
			b.Fatal(err)
		}
		ci, err := model.Replicate(inst.Platform, machines, inst.Jobs)
		if err != nil {
			b.Fatal(err)
		}
		horizon := 0.0
		for _, j := range ci.Jobs {
			if j.Release > horizon {
				horizon = j.Release
			}
		}
		plan, err := fault.New(fault.Config{
			Nodes: machines, Horizon: horizon, Rate: 2, Seed: 20_06,
		})
		if err != nil {
			b.Fatal(err)
		}
		lb, _ := cluster.Balancers("stretch")
		runner := core.NewClusterRunner()
		b.Run(fmt.Sprintf("machines=%d", machines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner.ResetStats()
				cs, err := runner.RunFaulty("SWRPT", ci, lb, 20_06, plan, fault.DefaultBackoff())
				if err != nil {
					b.Fatal(err)
				}
				if cs.MaxStretch(ci) < 1 {
					b.Fatal("degenerate schedule")
				}
			}
		})
	}
}

// BenchmarkGridWorkers measures the sharded runner's scaling on a fixed
// grid slice: the same work at 1 worker and at GOMAXPROCS workers, with
// bitwise-identical results (see exp.TestGridWorkerInvariance).
func BenchmarkGridWorkers(b *testing.B) {
	grid := exp.DefaultGrid()
	sample := []exp.GridPoint{grid[0], grid[30], grid[60], grid[90], grid[120], grid[150]}
	workers := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := exp.Options{Runs: 2, Seed: 42, TargetJobs: 12, Workers: w,
				Schedulers: []string{"Online", "SWRPT", "SRPT", "MCT"}}
			for i := 0; i < b.N; i++ {
				if results := exp.RunGrid(sample, opts); len(results) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

func BenchmarkSimplexFloat(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := lp.New[float64](lp.NewFloat64Ops(), 6)
		p.SetMaximize(true)
		for v := 0; v < 6; v++ {
			p.SetObjectiveCoef(v, float64(v+1))
			row := make([]float64, 6)
			row[v] = 1
			p.AddDense(row, lp.LE, 10)
		}
		p.AddDense([]float64{1, 1, 1, 1, 1, 1}, lp.LE, 20)
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexRational(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := lp.New[rat.Rat](lp.RatOps{}, 6)
		p.SetMaximize(true)
		one := rat.One
		for v := 0; v < 6; v++ {
			p.SetObjectiveCoef(v, rat.FromInt(int64(v+1)))
			row := make([]rat.Rat, 6)
			row[v] = one
			p.AddDense(row, lp.LE, rat.FromInt(10))
		}
		p.AddDense([]rat.Rat{one, one, one, one, one, one}, lp.LE, rat.FromInt(20))
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplexRevised is BenchmarkSimplexRational through the revised
// solver: the same tiny dense box LP, tracking the revised method's
// per-solve constant factors (eta file, column build, BTRAN pricing). On
// programs this small and dense the tableau is competitive — which is why
// it stays the float-path solver; the revised method's case is the sparse
// System (1) scale of BenchmarkOfflineExactScale and the ablation below.
func BenchmarkSimplexRevised(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := lp.New[rat.Rat](lp.RatOps{}, 6)
		p.SetMaximize(true)
		one := rat.One
		for v := 0; v < 6; v++ {
			p.SetObjectiveCoef(v, rat.FromInt(int64(v+1)))
			row := make([]rat.Rat, 6)
			row[v] = one
			p.AddDense(row, lp.LE, rat.FromInt(10))
		}
		p.AddDense([]rat.Rat{one, one, one, one, one, one}, lp.LE, rat.FromInt(20))
		if _, err := p.SolveRevised(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCostFlow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := flow.NewMinCost(22, 0)
		for u := 0; u < 10; u++ {
			g.AddEdge(20, u, 5, 0)
			for v := 10; v < 20; v++ {
				g.AddEdge(u, v, 3, float64((u*v)%7))
			}
		}
		for v := 10; v < 20; v++ {
			g.AddEdge(v, 21, 5, 0)
		}
		g.Run(20, 21)
	}
}

// --- ablation benchmarks (design choices from DESIGN.md) ---

// BenchmarkAblationExactRefinement compares the float bisection refinement
// against the exact rational System (1) LP on the same instance — the
// price of eliminating the §5.3 precision anomaly — and, within the exact
// mode, the sparse revised simplex against the dense-tableau oracle
// (Solver.DenseLP): the System (1) ablation DESIGN.md quotes. The gap
// between the last two grows with platform size; see
// BenchmarkOfflineExactScale for the paper-scale end of the curve.
func BenchmarkAblationExactRefinement(b *testing.B) {
	inst := benchInstance(b, 8)
	prob := offline.FromInstance(inst)
	b.Run("bisection", func(b *testing.B) {
		s := offline.Solver{Exact: false}
		for i := 0; i < b.N; i++ {
			if _, err := s.OptimalStretch(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-lp-revised", func(b *testing.B) {
		s := offline.Solver{Exact: true}
		for i := 0; i < b.N; i++ {
			if _, err := s.OptimalStretch(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-lp-dense", func(b *testing.B) {
		s := offline.Solver{Exact: true, DenseLP: true}
		for i := 0; i < b.N; i++ {
			if _, err := s.OptimalStretch(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFeasibilityOracle compares the single-machine EDF
// feasibility oracle against the general flow oracle on the same
// uni-processor deadline problems.
func BenchmarkAblationFeasibilityOracle(b *testing.B) {
	jobs := make([]uniproc.UJob, 30)
	for i := range jobs {
		jobs[i] = uniproc.UJob{Release: float64(i) * 0.7, Size: 1 + float64(i%5)}
	}
	inst, err := uniproc.Instance(jobs)
	if err != nil {
		b.Fatal(err)
	}
	prob := offline.FromInstance(inst)
	const f = 3.0
	tasks := make([]uniproc.Task, len(jobs))
	for i := range inst.Jobs {
		tasks[i] = uniproc.Task{
			Release:  inst.Jobs[i].Release,
			Work:     inst.Jobs[i].Size,
			Deadline: inst.Jobs[i].Release + f*inst.AloneTime(model.JobID(i)),
		}
	}
	b.Run("edf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			uniproc.FeasibleEDF(tasks, 1)
		}
	})
	b.Run("flow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prob.Feasible(f)
		}
	})
}

// BenchmarkAblationRealizeOrderings compares the two Step-4 realisation
// orders of the online heuristic on identical allocations.
func BenchmarkAblationRealizeOrderings(b *testing.B) {
	inst := benchInstance(b, 30)
	prob := offline.FromInstance(inst)
	var s offline.Solver
	sol, err := s.OptimalStretch(prob)
	if err != nil {
		b.Fatal(err)
	}
	for _, ord := range []struct {
		name string
		o    offline.Ordering
	}{{"terminal-swrpt", offline.TerminalSWRPT}, {"global-edf", offline.GlobalCompletionEDF}} {
		b.Run(ord.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sol.Alloc.Realize(ord.o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMaxFlowAlgorithm races the two max-flow implementations
// on the transportation shape of the feasibility oracle (three layers,
// many parallel bottlenecks).
func BenchmarkAblationMaxFlowAlgorithm(b *testing.B) {
	const tasks, bins = 40, 200
	build := func() ([][3]float64, float64) {
		var edges [][3]float64
		total := 0.0
		for k := 0; k < tasks; k++ {
			w := 1 + float64(k%7)
			total += w
			edges = append(edges, [3]float64{float64(tasks + bins), float64(k), w})
			for t := 0; t < bins; t++ {
				if (k+t)%3 == 0 {
					edges = append(edges, [3]float64{float64(k), float64(tasks + t), w})
				}
			}
		}
		for t := 0; t < bins; t++ {
			edges = append(edges, [3]float64{float64(tasks + t), float64(tasks + bins + 1), 2.5})
		}
		return edges, total
	}
	edges, _ := build()
	src, sink := tasks+bins, tasks+bins+1
	b.Run("dinic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := flow.NewGraph[float64](lp.NewFloat64Ops(), tasks+bins+2)
			for _, e := range edges {
				g.AddEdge(int(e[0]), int(e[1]), e[2])
			}
			g.MaxFlow(src, sink)
		}
	})
	b.Run("push-relabel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := flow.NewPushRelabel(tasks+bins+2, 0)
			for _, e := range edges {
				g.AddEdge(int(e[0]), int(e[1]), e[2])
			}
			g.MaxFlow(src, sink)
		}
	})
}

// BenchmarkAblationEngineReuse contrasts a fresh engine per run (every
// buffer reallocated, as the seed engine behaved) against one reused
// sim.Engine (allocation-free steady state) on the same policy — the cost
// of the former is the motivation for the Engine API in DESIGN.md.
func BenchmarkAblationEngineReuse(b *testing.B) {
	inst := benchInstance(b, 60)
	pol := policy.SWRPT{}
	b.Run("fresh-engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunList(inst, pol); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-engine", func(b *testing.B) {
		eng := sim.NewEngine()
		if _, err := eng.RunList(inst, pol); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunList(inst, pol); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPlannerWorkspace contrasts a fresh planner + engine per
// run (every LP/flow/plan buffer reallocated, as PR 1 left the planned path)
// against a reused engine + offline.Workspace pair — the planned-path
// analogue of BenchmarkAblationEngineReuse and the cost justification for
// the workspace layer in DESIGN.md.
func BenchmarkAblationPlannerWorkspace(b *testing.B) {
	inst := benchInstance(b, 25)
	for _, variant := range []struct {
		name string
		mk   func() sim.Planner
	}{
		{"offline", func() sim.Planner { return offline.NewPlanner() }},
		{"online", func() sim.Planner { return online.New(online.Plain) }},
	} {
		b.Run(variant.name+"/fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunPlanned(inst, variant.mk()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(variant.name+"/workspace", func(b *testing.B) {
			eng := sim.NewEngine()
			ws := offline.NewWorkspace()
			pl := variant.mk()
			pl.(interface{ SetWorkspace(*offline.Workspace) }).SetWorkspace(ws)
			if _, err := eng.RunPlanned(inst, pl); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunPlanned(inst, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationListVsPlanned contrasts the two engine drivers on the
// same priority concept: SWRPT as a dynamic list policy vs the offline
// optimal followed as a fixed timetable.
func BenchmarkAblationListVsPlanned(b *testing.B) {
	inst := benchInstance(b, 30)
	b.Run("list-swrpt", func(b *testing.B) {
		s := core.MustGet("SWRPT")
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("planned-offline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunPlanned(inst, offline.NewPlanner()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
